package cluster

import (
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/netsim"
	"repro/internal/relstore"
	"repro/internal/search"
	"repro/internal/workload"
)

func newSearchCluster(t *testing.T, stations, m int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Stations: stations, M: m, UplinkBps: 1.25e6, Latency: 5 * time.Millisecond,
		Watermark: 0, Mode: netsim.Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSearchFederatedFindsRemoteContent(t *testing.T) {
	c := newSearchCluster(t, 7, 2)
	spec := smallCourse(1)
	if _, _, err := c.AuthorCourse(spec); err != nil {
		t.Fatal(err)
	}
	// Nothing broadcast: the course lives only on station 1, yet a
	// leaf's federation query finds its pages.
	rep, err := c.SearchFederated(7, search.Query{Terms: []string{"lecture"}, TopK: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Hits) != spec.Pages {
		t.Fatalf("hits = %d, want %d course pages", len(rep.Hits), spec.Pages)
	}
	for _, h := range rep.Hits {
		if h.Station != 1 {
			t.Errorf("hit %s credited to station %d, want 1", h.Key, h.Station)
		}
	}
	if rep.Answered != 7 || rep.Latency <= 0 || rep.WireBytes <= 0 {
		t.Errorf("report = %+v", rep)
	}
}

// TestSearchFederatedLatencyGrowsWithTreeDepth: the scatter-gather
// costs O(depth) round trips, so a chain (m=1) must answer slower than
// a wide tree over the same stations — the shape the netsim cost model
// exists to expose.
func TestSearchFederatedLatencyGrowsWithTreeDepth(t *testing.T) {
	q := search.Query{Terms: []string{"lecture"}, TopK: 10}
	latency := func(m int) time.Duration {
		c := newSearchCluster(t, 7, m)
		if _, _, err := c.AuthorCourse(smallCourse(1)); err != nil {
			t.Fatal(err)
		}
		rep, err := c.SearchFederated(1, q)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Latency
	}
	chain, tree := latency(1), latency(3)
	if chain <= tree {
		t.Errorf("chain latency %v not above m=3 tree latency %v", chain, tree)
	}
}

func TestSearchFederatedGraftsAroundDownStation(t *testing.T) {
	c := newSearchCluster(t, 7, 2)
	spec := smallCourse(1)
	if _, _, err := c.AuthorCourse(spec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.PreBroadcast(spec.URL); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkDown(2); err != nil {
		t.Fatal(err)
	}
	rep, err := c.SearchFederated(5, search.Query{Terms: []string{"lecture"}, TopK: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Down station 2 cannot answer, but its subtree (4, 5) still does,
	// and every page is replicated anyway — the hit set is whole.
	if len(rep.Hits) != spec.Pages {
		t.Errorf("hits = %d, want %d", len(rep.Hits), spec.Pages)
	}
	if rep.Answered != 6 {
		t.Errorf("answered = %d, want 6", rep.Answered)
	}
	// A down requester is refused outright.
	if _, err := c.SearchFederated(2, search.Query{Terms: []string{"lecture"}}); err == nil {
		t.Error("down requester was served")
	}
}

func TestSearchLocalRPC(t *testing.T) {
	store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	store.Now = func() time.Time { return time.Date(1999, 4, 21, 0, 0, 0, 0, time.UTC) }
	if _, err := search.Attach(store); err != nil {
		t.Fatal(err)
	}
	spec := smallCourse(1)
	if _, err := workload.BuildCourse(store, spec); err != nil {
		t.Fatal(err)
	}
	n := NewNode(3, store)
	addr, err := n.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	rs, err := DialStation(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	hits, err := rs.SearchLocal([]string{"lecture"}, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 4 {
		t.Fatalf("hits = %+v", hits)
	}
	for _, h := range hits {
		if h.Station != 3 {
			t.Errorf("hit %s station = %d, want 3", h.Key, h.Station)
		}
	}
}

func TestSearchLocalRPCWithoutIndexFails(t *testing.T) {
	_, addr, _ := startNode(t, 1, true)
	rs, err := DialStation(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, err := rs.SearchLocal([]string{"lecture"}, false, 4); err == nil {
		t.Fatal("station without an index answered a SearchLocal")
	}
}
