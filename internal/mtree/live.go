package mtree

// Live-tree arithmetic: the placement equations of section 4 assume
// every joined station stays up, but a deployed fabric loses stations
// mid-semester. The helpers here derive the *grafted* tree over the
// live stations — a failed station's children attach to its nearest
// live ancestor, and the on-demand pull route skips dead holders — so
// the netsim simulator and the live TCP fabric route around failures
// with the same arithmetic.

// LiveChildren expands the children of station n among total joined
// stations, replacing every child reported dead by the down predicate
// with that child's own (recursively expanded) children. This is the
// grafting rule for a broadcast: the subtree under a dead station is
// served directly by the dead station's parent.
func LiveChildren(n, m, total int, down func(int) bool) ([]int, error) {
	kids, err := Children(n, m, total)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, kid := range kids {
		if down == nil || !down(kid) {
			out = append(out, kid)
			continue
		}
		grafted, err := LiveChildren(kid, m, total, down)
		if err != nil {
			return nil, err
		}
		out = append(out, grafted...)
	}
	return out, nil
}

// LiveAncestors returns the ancestors of station k from its parent up
// to the root, with positions reported dead by the down predicate
// removed. The first element (when any) is the station's nearest live
// ancestor — the grafted parent a broadcast or an on-demand pull uses
// when the real parent is down. The slice is empty when every ancestor
// including the root is dead.
func LiveAncestors(k, m int, down func(int) bool) ([]int, error) {
	path, err := AncestorPath(k, m)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, p := range path[1:] {
		if down != nil && down(p) {
			continue
		}
		out = append(out, p)
	}
	return out, nil
}

// NearestLiveAncestor returns the closest live ancestor of station k,
// skipping any run of consecutive dead positions on the root path. The
// boolean reports whether one exists (false when every ancestor,
// including the root, is dead).
func NearestLiveAncestor(k, m int, down func(int) bool) (int, bool, error) {
	live, err := LiveAncestors(k, m, down)
	if err != nil {
		return 0, false, err
	}
	if len(live) == 0 {
		return 0, false, nil
	}
	return live[0], true, nil
}
