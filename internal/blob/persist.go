package blob

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshotEntry is the gob image of one stored object.
type snapshotEntry struct {
	Hash     string
	Kind     Kind
	Refcount int
	Names    []string
	Data     []byte
}

// Snapshot writes a point-in-time image of the store, so a station can
// persist its BLOB layer alongside the relational snapshot.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries := make([]snapshotEntry, 0, len(s.objects))
	for _, ref := range s.listLocked() {
		e := s.objects[ref.Hash]
		names := make([]string, 0, len(e.names))
		for n := range e.names {
			names = append(names, n)
		}
		sortStrings(names)
		entries = append(entries, snapshotEntry{
			Hash:     ref.Hash,
			Kind:     e.kind,
			Refcount: e.refcount,
			Names:    names,
			Data:     e.data,
		})
	}
	return gob.NewEncoder(w).Encode(entries)
}

// Restore replaces the store contents with a snapshot previously
// written by Snapshot, verifying every object's content hash.
func (s *Store) Restore(r io.Reader) error {
	var entries []snapshotEntry
	if err := gob.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("blob: decoding snapshot: %w", err)
	}
	fresh := NewStore()
	for _, e := range entries {
		if e.Refcount <= 0 {
			return fmt.Errorf("blob: snapshot holds unreferenced object %s", e.Hash[:12])
		}
		name := ""
		if len(e.Names) > 0 {
			name = e.Names[0]
		}
		ref := fresh.Put(name, e.Kind, e.Data)
		if ref.Hash != e.Hash {
			return fmt.Errorf("blob: snapshot object %s fails content verification", e.Hash[:12])
		}
		for _, n := range e.Names[1:] {
			fresh.mu.Lock()
			fresh.objects[ref.Hash].names[n] = struct{}{}
			fresh.mu.Unlock()
		}
		for i := 1; i < e.Refcount; i++ {
			if err := fresh.Retain(ref); err != nil {
				return err
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fresh.mu.Lock()
	defer fresh.mu.Unlock()
	s.objects = fresh.objects
	s.logicalBytes = fresh.logicalBytes
	s.physicalBytes = fresh.physicalBytes
	return nil
}

// listLocked returns refs sorted by hash; caller holds at least the
// read lock.
func (s *Store) listLocked() []Ref {
	refs := make([]Ref, 0, len(s.objects))
	for h, e := range s.objects {
		refs = append(refs, Ref{Hash: h, Size: int64(len(e.data)), Kind: e.kind})
	}
	sortRefs(refs)
	return refs
}

func sortRefs(refs []Ref) {
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j].Hash < refs[j-1].Hash; j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
