// Package search is the full-text layer of the Web document database:
// a positional inverted index over document *content* — HTML bodies
// (tokenized through htmlmini's text extraction), add-on program
// sources and script catalog metadata — so a station can answer
// substantive queries ("find the lecture that mentions pipelined
// broadcast") instead of only matching catalog keywords.
//
// The index is maintained incrementally: docdb calls the ContentIndex
// hooks on every content write (PutHTML, PutProgram, ImportBundle,
// ImportReference, the copy paths behind Instantiate and check-in
// edits) and on every content drop (migration to reference, deletes).
// It persists as a search-<gen> sidecar beside the relational
// checkpoint (see docdb's checkpoint coordination) and rebuilds itself
// from the relational tables whenever the sidecar is missing or stale,
// so it is a pure cache: the relational engine stays the only source
// of truth.
//
// On top of the local index the distribution fabric runs scatter-gather
// queries down the m-ary tree (fabric.Station.Search), merging bounded
// top-k result sets hop by hop — the querying model of the Distributed
// XML-Query Network applied to the paper's document stations.
package search

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/htmlmini"
)

// Document kinds carried in hit results.
const (
	KindHTML    = "html"
	KindProgram = "program"
	KindScript  = "script"
)

// DefaultTopK bounds a query's result set when the caller does not.
const DefaultTopK = 20

// Key builds the index-wide document key. HTML and program files key by
// starting URL and path; scripts key by name (URL empty).
func Key(kind, url, path string) string {
	return kind + ":" + url + "#" + path
}

// Query is one full-text request.
type Query struct {
	Terms []string
	// Phrase requires the terms to appear consecutively, using the
	// positional postings.
	Phrase bool
	// TopK bounds the result set (DefaultTopK when <= 0).
	TopK int
}

// Hit is one ranked result. Scores depend only on the document content
// and the query — never on which station answered — so hits for the
// same document rank identically everywhere and federation-wide merges
// are deterministic.
type Hit struct {
	Key     string
	Kind    string
	URL     string // starting URL ("" for script hits)
	Path    string // file path (script name for script hits)
	Score   int64
	Station int    // position of the answering station (0 = local)
	Snippet string // text surrounding the first match
}

// Searcher is the query side of an index, the capability the fabric
// and the Web UI need from whatever content index a station attached.
type Searcher interface {
	Search(q Query) []Hit
}

// doc is one indexed document: its identity plus the token stream the
// postings point into (kept for snippets and for the scan baseline).
type doc struct {
	Kind   string
	URL    string
	Path   string
	Tokens []string
}

// Index is the positional inverted index. Safe for concurrent use.
type Index struct {
	mu   sync.RWMutex
	docs map[string]*doc
	// post maps term -> doc key -> ascending token positions.
	post  map[string]map[string][]int32
	byURL map[string]map[string]bool // starting URL -> content doc keys
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		docs:  make(map[string]*doc),
		post:  make(map[string]map[string][]int32),
		byURL: make(map[string]map[string]bool),
	}
}

// Tokenize splits text into normalized index tokens: lower-cased runs
// of letters and digits.
func Tokenize(text string) []string {
	var toks []string
	start := -1
	flush := func(end int) {
		if start >= 0 {
			toks = append(toks, strings.ToLower(text[start:end]))
			start = -1
		}
	}
	for i, r := range text {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(text))
	return toks
}

// IndexHTML indexes (or re-indexes) one HTML file's visible text.
func (ix *Index) IndexHTML(url, path string, content []byte) {
	ix.add(KindHTML, url, path, Tokenize(htmlmini.Text(content)))
}

// IndexProgram indexes one add-on program source.
func (ix *Index) IndexProgram(url, path, language string, content []byte) {
	toks := Tokenize(string(content))
	if language != "" {
		toks = append(toks, strings.ToLower(language))
	}
	ix.add(KindProgram, url, path, toks)
}

// IndexScript indexes a script's catalog metadata, so stations holding
// only a document reference still answer for its title, keywords and
// author without materializing any content.
func (ix *Index) IndexScript(name, description, author string, keywords []string) {
	text := name + " " + description + " " + author + " " + strings.Join(keywords, " ")
	ix.add(KindScript, "", name, Tokenize(text))
}

// add installs one tokenized document, replacing any previous version.
func (ix *Index) add(kind, url, path string, tokens []string) {
	key := Key(kind, url, path)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(key)
	d := &doc{Kind: kind, URL: url, Path: path, Tokens: tokens}
	ix.docs[key] = d
	for pos, tok := range tokens {
		m := ix.post[tok]
		if m == nil {
			m = make(map[string][]int32)
			ix.post[tok] = m
		}
		m[key] = append(m[key], int32(pos))
	}
	if kind != KindScript {
		set := ix.byURL[url]
		if set == nil {
			set = make(map[string]bool)
			ix.byURL[url] = set
		}
		set[key] = true
	}
}

// RemoveContent drops every content document (HTML and program files)
// of one starting URL — a migration to reference or an implementation
// delete. The script metadata entry survives, as the reference does.
func (ix *Index) RemoveContent(url string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for key := range ix.byURL[url] {
		ix.removeLocked(key)
	}
}

// RemoveScript drops a script's metadata document.
func (ix *Index) RemoveScript(name string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(Key(KindScript, "", name))
}

func (ix *Index) removeLocked(key string) {
	d, ok := ix.docs[key]
	if !ok {
		return
	}
	delete(ix.docs, key)
	for _, tok := range d.Tokens {
		if m := ix.post[tok]; m != nil {
			delete(m, key)
			if len(m) == 0 {
				delete(ix.post, tok)
			}
		}
	}
	if d.Kind != KindScript {
		if set := ix.byURL[d.URL]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(ix.byURL, d.URL)
			}
		}
	}
}

// Docs reports the number of indexed documents.
func (ix *Index) Docs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// IndexStats sizes the inverted index: how many documents it covers,
// how many distinct terms the postings hold, and the total number of
// (term, document) posting entries. Scraped by the station Stats RPC.
type IndexStats struct {
	Docs     int
	Terms    int
	Postings int
}

// Stats returns a point-in-time size snapshot of the index.
func (ix *Index) Stats() IndexStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := IndexStats{Docs: len(ix.docs), Terms: len(ix.post)}
	for _, m := range ix.post {
		st.Postings += len(m)
	}
	return st
}

// Search answers a query from the postings: per-term lookups, scored
// by matched terms first and term frequency second, ranked
// deterministically (score descending, key ascending) and trimmed to
// TopK.
func (ix *Index) Search(q Query) []Hit {
	terms := NormalizeTerms(q.Terms)
	if len(terms) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	type acc struct {
		matched int
		tf      int
	}
	scores := make(map[string]*acc)
	for _, term := range terms {
		for key, positions := range ix.post[term] {
			a := scores[key]
			if a == nil {
				a = &acc{}
				scores[key] = a
			}
			a.matched++
			a.tf += len(positions)
		}
	}
	var hits []Hit
	for key, a := range scores {
		if q.Phrase && len(terms) > 1 {
			if a.matched < len(terms) || !ix.phraseInLocked(key, terms) {
				continue
			}
		}
		d := ix.docs[key]
		hits = append(hits, Hit{
			Key:     key,
			Kind:    d.Kind,
			URL:     d.URL,
			Path:    d.Path,
			Score:   score(a.matched, a.tf),
			Snippet: snippet(d.Tokens, terms),
		})
	}
	return Rank(hits, q.TopK)
}

// phraseInLocked reports whether the terms appear consecutively in the
// document, walking the first term's postings.
func (ix *Index) phraseInLocked(key string, terms []string) bool {
	first := ix.post[terms[0]][key]
	for _, start := range first {
		ok := true
		for i := 1; i < len(terms); i++ {
			if !containsPos(ix.post[terms[i]][key], start+int32(i)) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// containsPos binary-searches an ascending position list.
func containsPos(positions []int32, want int32) bool {
	i := sort.Search(len(positions), func(i int) bool { return positions[i] >= want })
	return i < len(positions) && positions[i] == want
}

// score folds matched-term count and term frequency into one ranking
// integer: a document matching more distinct query terms always beats
// one matching fewer, however often.
func score(matched, tf int) int64 {
	return int64(matched)<<32 + int64(tf)
}

// snippet extracts the tokens surrounding the first query-term match.
const snippetRadius = 5

func snippet(tokens []string, terms []string) string {
	at := -1
	for i, tok := range tokens {
		for _, term := range terms {
			if tok == term {
				at = i
				break
			}
		}
		if at >= 0 {
			break
		}
	}
	if at < 0 {
		return ""
	}
	lo := at - snippetRadius
	if lo < 0 {
		lo = 0
	}
	hi := at + snippetRadius + 1
	if hi > len(tokens) {
		hi = len(tokens)
	}
	return strings.Join(tokens[lo:hi], " ")
}

// NormalizeTerms flattens raw query terms into index tokens — the
// normalization Search applies. Callers that pay per query (the
// fabric's scatter-gather) use it to skip term-less queries outright.
func NormalizeTerms(terms []string) []string {
	var out []string
	for _, t := range terms {
		for _, tok := range Tokenize(t) {
			out = append(out, tok)
		}
	}
	return out
}

// Rank sorts hits deterministically (score descending, key ascending)
// and trims to k (DefaultTopK when k <= 0). It is the shared ordering
// of local queries, per-hop merges and the scan baseline, so every
// layer of the system ranks identically.
func Rank(hits []Hit, k int) []Hit {
	if k <= 0 {
		k = DefaultTopK
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Key < hits[j].Key
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// Merge folds hit lists from several stations into one ranked top-k
// set, deduplicating replicas of the same document: scores are
// content-derived, so any replica carries the same score and the
// lowest answering station wins the credit. This is the per-hop merge
// of the fabric's scatter-gather search.
func Merge(k int, lists ...[]Hit) []Hit {
	best := make(map[string]Hit)
	for _, list := range lists {
		for _, h := range list {
			prev, ok := best[h.Key]
			if !ok || h.Score > prev.Score ||
				(h.Score == prev.Score && h.Station < prev.Station) {
				best[h.Key] = h
			}
		}
	}
	merged := make([]Hit, 0, len(best))
	for _, h := range best {
		merged = append(merged, h)
	}
	return Rank(merged, k)
}

// ScanSearch is the unindexed baseline: it walks every document and
// re-scans its token stream per query term, with exactly the scoring,
// phrase rule and ranking of Search. The benchmarks pin the inverted
// index against it, and the differential tests require bit-identical
// results.
func (ix *Index) ScanSearch(q Query) []Hit {
	terms := NormalizeTerms(q.Terms)
	if len(terms) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var hits []Hit
	for key, d := range ix.docs {
		matched, tf := 0, 0
		for _, term := range terms {
			n := 0
			for _, tok := range d.Tokens {
				if tok == term {
					n++
				}
			}
			if n > 0 {
				matched++
				tf += n
			}
		}
		if matched == 0 {
			continue
		}
		if q.Phrase && len(terms) > 1 {
			if matched < len(terms) || !phraseInTokens(d.Tokens, terms) {
				continue
			}
		}
		hits = append(hits, Hit{
			Key:     key,
			Kind:    d.Kind,
			URL:     d.URL,
			Path:    d.Path,
			Score:   score(matched, tf),
			Snippet: snippet(d.Tokens, terms),
		})
	}
	return Rank(hits, q.TopK)
}

// phraseInTokens is the scan-side phrase check.
func phraseInTokens(tokens, terms []string) bool {
	for i := 0; i+len(terms) <= len(tokens); i++ {
		ok := true
		for j, term := range terms {
			if tokens[i+j] != term {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
