package search

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// TestLegacyGobSidecarLoads: decodeSidecar must still accept the gob
// sidecarImage the pre-binary checkpoint writer produced, yielding the
// same document set the binary image would.
func TestLegacyGobSidecarLoads(t *testing.T) {
	ix := NewIndex()
	ix.IndexScript("os-course", "operating systems lecture", "Shih", []string{"os", "paging"})
	ix.IndexHTML("http://mmu/os", "index.html", []byte("<html><body>virtual memory and paging</body></html>"))
	ix.mu.RLock()
	want := make(map[string]*doc, len(ix.docs))
	for k, d := range ix.docs {
		want[k] = d
	}
	ix.mu.RUnlock()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sidecarImage{Docs: want}); err != nil {
		t.Fatal(err)
	}
	got, err := decodeSidecar(buf.Bytes())
	if err != nil {
		t.Fatalf("legacy gob sidecar rejected: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded docs differ:\n got %+v\nwant %+v", got, want)
	}

	// An index installed from the legacy sidecar answers queries.
	ix2 := NewIndex()
	ix2.install(got)
	hits := ix2.Search(Query{Terms: []string{"paging"}, TopK: 10})
	if len(hits) == 0 {
		t.Fatal("no hits from legacy-restored index")
	}
}
