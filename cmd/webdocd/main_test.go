package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/workload"
)

var (
	buildBin string
	buildErr error
)

// TestMain builds the webdocd binary once for every subprocess test.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "webdocd-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	buildBin = filepath.Join(dir, "webdocd")
	if out, err := exec.Command("go", "build", "-o", buildBin, ".").CombinedOutput(); err != nil {
		buildErr = fmt.Errorf("building webdocd: %v\n%s", err, out)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// daemonBinary returns the binary built by TestMain.
func daemonBinary(t *testing.T) string {
	t.Helper()
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// startDaemon launches webdocd and parses the bound address from its
// "serving on" banner.
func startDaemon(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "serving on "); i >= 0 {
				rest := line[i+len("serving on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr, cmd
	case <-time.After(10 * time.Second):
		t.Fatal("webdocd did not report a listen address")
		return "", nil
	}
}

// stopDaemon delivers SIGTERM and waits for the orderly shutdown that
// flushes the BLOB snapshot and closes the WAL.
func stopDaemon(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("webdocd did not exit on SIGTERM")
	}
}

// countMedia returns the impl_media rows visible over the station RPC.
func countMedia(t *testing.T, rs *cluster.RemoteStation) int {
	t.Helper()
	reply, err := rs.SQL("SELECT res_id FROM impl_media")
	if err != nil {
		t.Fatal(err)
	}
	return len(reply.Rows)
}

// TestKillRestartPreservesMedia seeds a persistent station, SIGTERMs
// it, restarts it on the same WAL, and checks that both the relational
// rows and the physical media bytes (BLOB sidecar snapshot) survived.
func TestKillRestartPreservesMedia(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := daemonBinary(t)
	wal := filepath.Join(t.TempDir(), "station1.wal")
	spec := workload.DefaultSpec(1)

	addr, cmd := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-pos", "1", "-wal", wal, "-seed-course", "3")
	rs, err := cluster.DialStation(addr)
	if err != nil {
		t.Fatal(err)
	}
	mediaBefore := countMedia(t, rs)
	if mediaBefore == 0 {
		t.Fatal("seeded station has no media")
	}
	bundleBefore, err := rs.FetchBundle(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	rs.Close()
	stopDaemon(t, cmd)

	// Restart on the same WAL, without reseeding.
	addr2, cmd2 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-pos", "1", "-wal", wal)
	rs2, err := cluster.DialStation(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer rs2.Close()
	if got := countMedia(t, rs2); got != mediaBefore {
		t.Errorf("media rows after restart = %d, want %d", got, mediaBefore)
	}
	// Exporting the bundle walks the BLOB store: it only succeeds when
	// the sidecar snapshot brought the physical bytes back.
	bundleAfter, err := rs2.FetchBundle(spec.URL)
	if err != nil {
		t.Fatalf("bundle after restart: %v", err)
	}
	if got, want := bundleAfter.TotalBytes(), bundleBefore.TotalBytes(); got != want {
		t.Errorf("bundle bytes after restart = %d, want %d", got, want)
	}
	if len(bundleAfter.Media) != len(bundleBefore.Media) {
		t.Errorf("bundle media after restart = %d, want %d", len(bundleAfter.Media), len(bundleBefore.Media))
	}
	for i, m := range bundleAfter.Media {
		if len(m.Data) == 0 {
			t.Errorf("media %d (%s) came back empty", i, m.Name)
		}
	}
	stopDaemon(t, cmd2)
}

// TestDaemonFabricWalkthrough runs the README's three-station
// deployment end to end through real processes: a root, two joiners, a
// broadcast, a resolve and a migration.
func TestDaemonFabricWalkthrough(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := daemonBinary(t)
	spec := workload.DefaultSpec(1)

	rootAddr, _ := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-root", "-m", "2", "-watermark", "0", "-seed-course", "3")
	addr2, _ := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-join", rootAddr)
	addr3, _ := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-join", rootAddr)

	admin := fabric.DialAdmin(rootAddr)
	defer admin.Close()
	top, err := admin.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if top.N != 3 || !top.IsRoot {
		t.Fatalf("topology = %+v", top)
	}
	res, err := admin.Broadcast(spec.URL, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stations) != 2 {
		t.Fatalf("broadcast = %+v", res)
	}
	for _, sr := range res.Stations {
		if sr.Err != "" {
			t.Errorf("station %d: %s", sr.Pos, sr.Err)
		}
	}
	// Both joiners hold the pages now.
	for _, a := range []string{addr2, addr3} {
		rs, err := cluster.DialStation(a)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := rs.SQL("SELECT file_id FROM html_files")
		rs.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(reply.Rows) == 0 {
			t.Errorf("station %s holds no pages after broadcast", a)
		}
	}
	mig, err := admin.EndLecture(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Freed == 0 || len(mig.Stations) != 2 {
		t.Errorf("migration = %+v", mig)
	}
	// After migration station 3 resolves the course again via its
	// parent route; watermark 0 materializes immediately.
	st3 := fabric.DialAdmin(addr3)
	defer st3.Close()
	fetch, err := st3.Fetch(spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !fetch.Replicated {
		t.Errorf("fetch = %+v", fetch)
	}
}
