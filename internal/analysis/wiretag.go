package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WireTag enforces codec exhaustiveness on packages named "wire": a
// value-tag constant (tag*) that is written by the Append side but
// has no decode switch arm produces streams the Reader rejects as
// corrupt — the classic add-a-type-forget-the-decoder bug, which only
// surfaces when the first value of the new kind crosses a process
// boundary or a restart replays it from the WAL. The symmetric hole
// (a decode arm for a tag nothing encodes) is dead dispatch and
// flagged too. The append side is any reference from a function whose
// name starts with Append; the read side is a case arm of a switch
// inside a function named Read* or a method of a *Reader type.
var WireTag = &Analyzer{
	Name: "wiretag",
	Doc:  "every wire tag constant needs both an Append reference and a Read switch arm",
	Run:  runWireTag,
}

func runWireTag(p *Pass) {
	if p.Pkg.Name() != "wire" {
		return
	}
	appended := make(map[types.Object]bool)
	decoded := make(map[types.Object]bool)

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch {
			case strings.HasPrefix(fd.Name.Name, "Append"):
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok {
						if c := wireTagConst(p, id); c != nil {
							appended[c] = true
						}
					}
					return true
				})
			case isWireReadSide(p, fd):
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					cc, ok := n.(*ast.CaseClause)
					if !ok {
						return true
					}
					for _, expr := range cc.List {
						if id, ok := expr.(*ast.Ident); ok {
							if c := wireTagConst(p, id); c != nil {
								decoded[c] = true
							}
						}
					}
					return true
				})
			}
		}
	}

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := p.Info.Defs[name]
					if obj == nil || !isTagConst(obj) {
						continue
					}
					if !appended[obj] {
						p.Reportf(name.Pos(), "wire tag %s is never written: no reference from any Append* function", name.Name)
					}
					if !decoded[obj] {
						p.Reportf(name.Pos(), "wire tag %s has no decode arm: no case in any Read-side switch — streams carrying it will be rejected as corrupt", name.Name)
					}
				}
			}
		}
	}
}

// wireTagConst resolves id to a tag* constant of this package, nil
// otherwise.
func wireTagConst(p *Pass, id *ast.Ident) types.Object {
	obj := p.Info.Uses[id]
	if obj == nil || obj.Pkg() != p.Pkg || !isTagConst(obj) {
		return nil
	}
	return obj
}

func isTagConst(obj types.Object) bool {
	_, isConst := obj.(*types.Const)
	return isConst && strings.HasPrefix(obj.Name(), "tag")
}

// isWireReadSide reports whether fd is decode-side code: a Read*
// function or any method whose receiver type name contains "Reader".
func isWireReadSide(p *Pass, fd *ast.FuncDecl) bool {
	if strings.HasPrefix(fd.Name.Name, "Read") {
		return true
	}
	fn, _ := p.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	tn := receiverTypeName(fn)
	return tn != nil && strings.Contains(tn.Name(), "Reader")
}
