// Collab demonstrates collaborative course development per section 3 of
// the paper: two instructors work on the same course under the object
// locking compatibility table, updates trigger referential-integrity
// alerts, each instructor keeps separate annotations over the shared
// implementation, and the configuration management records versions at
// every check-in.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/annotate"
	"repro/internal/core"
	"repro/internal/docdb"
	"repro/internal/locking"
	"repro/internal/workload"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Stations = 3
	u, err := core.NewUniversity(cfg)
	if err != nil {
		log.Fatal(err)
	}
	spec := workload.DefaultSpec(1)
	spec.ScriptName = "mm-course"
	spec.URL = "http://mmu/mm-course/v1"
	spec.Pages = 8
	spec.MediaScaleDown = 4096
	if _, err := u.PublishCourse(spec, "MM-201", "Shih"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("the paper's object locking compatibility table:")
	fmt.Print(locking.TableString())

	// Shih read-locks the course container; Ma can read a component but
	// not write it, yet may write the parent database object.
	course := locking.Path{"mmu", "mm-course"}
	page := locking.Path{"mmu", "mm-course", "v1", "index.html"}
	parent := locking.Path{"mmu"}

	shihLock, _, err := u.Locks.TryAcquire("Shih", course, locking.Read)
	if err != nil {
		log.Fatal(err)
	}
	if lk, blockers, _ := u.Locks.TryAcquire("Ma", page, locking.Read); lk != nil {
		fmt.Println("\nMa reads a component under Shih's read lock: granted")
		lk.Release()
	} else {
		log.Fatalf("component read refused: %v", blockers)
	}
	if lk, blockers, _ := u.Locks.TryAcquire("Ma", page, locking.Write); lk == nil {
		fmt.Printf("Ma writes the same component: blocked by %v (as the table requires)\n", blockers)
	} else {
		lk.Release()
		log.Fatal("component write should have been blocked")
	}
	if lk, _, _ := u.Locks.TryAcquire("Ma", parent, locking.Write); lk != nil {
		fmt.Println("Ma writes the parent database object: granted (parents stay open)")
		lk.Release()
	} else {
		log.Fatal("parent write should have been granted")
	}
	shihLock.Release()

	// Ma edits the script through the full collaborative path: lock,
	// check out, update, check in, alerts.
	alerts, err := u.EditScript(context.Background(), "Ma", spec.ScriptName, func(s *docdb.Store) error {
		return s.SetProgress(spec.ScriptName, 75)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMa's edit raised %d referential-integrity alerts:\n", alerts)
	for i, a := range u.Alerts.Pending("Ma") {
		if i == 4 {
			fmt.Printf("  ... and %d more\n", alerts-4)
			break
		}
		fmt.Printf("  [%s -> %s] %s\n", a.SourceKind, a.TargetKind, a.Message)
	}
	u.Alerts.AckAll("Ma")

	// Each instructor annotates the shared course separately.
	for _, instr := range []string{"Shih", "Ma"} {
		doc := &annotate.Document{
			Author:  instr,
			PageURL: spec.URL + "/index.html",
			Primitives: []annotate.Primitive{
				{Kind: annotate.PrimRect, At: time.Second,
					Points: []annotate.Point{{X: 10, Y: 10}, {X: 200, Y: 80}}, Color: 0xFF0000, Width: 2},
				{Kind: annotate.PrimText, At: 3 * time.Second,
					Points: []annotate.Point{{X: 20, Y: 40}}, Text: "note by " + instr},
			},
		}
		if err := u.Annotate(instr, spec.URL, doc); err != nil {
			log.Fatal(err)
		}
	}
	docs, err := u.Annotations(spec.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d instructors hold separate annotations over the same implementation\n", len(docs))
	merged, authors := annotate.Merge(docs...)
	fmt.Println("merged playback stream:")
	for i, p := range merged {
		fmt.Printf("  t=%v %-8s by %s\n", p.At, p.Kind, authors[i])
	}

	// The configuration management kept a version per check-in.
	hist, err := u.InstructorStore().History("script", spec.ScriptName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nversion history of %s:\n", spec.ScriptName)
	for _, v := range hist {
		fmt.Printf("  v%d by %s: %s\n", v.Version, v.Author, v.Comment)
	}
}
