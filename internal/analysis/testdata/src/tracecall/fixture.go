// Fixture for the tracecall analyzer: traced scopes (HandleCtx
// handlers, trace-context-carrying functions, and methods of a
// CtxHandler-registering type) must propagate via CallTrace.
package tc

import (
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

type server struct {
	srv  *transport.Server
	pool *transport.Pool
}

func (s *server) register() {
	s.srv.HandleCtx("Push", s.handlePush)
	s.srv.HandleCtx("Lit", func(ctx *transport.Ctx, decode func(any) error) (any, error) {
		return nil, s.pool.Call("Down", struct{}{}, nil) // want `pool\.Call inside a traced scope drops the trace context`
	})
}

// handlePush is HandleCtx-registered: its downstream calls must carry
// ctx.Trace().
func (s *server) handlePush(ctx *transport.Ctx, decode func(any) error) (any, error) {
	err := s.pool.Call("Down", struct{}{}, nil) // want `pool\.Call inside a traced scope drops the trace context`
	return nil, err
}

// helper is not itself registered, but server registers CtxHandlers,
// so its whole method set is the traced data plane.
func (s *server) helper() error {
	return s.pool.CallWithTimeout("Down", struct{}{}, nil, time.Second) // want `pool\.CallWithTimeout inside a traced scope drops the trace context`
}

// fanOut received a trace context, so dropping it downstream loses
// the traversal.
func fanOut(p *transport.Pool, tc obs.TraceContext) error {
	return p.Call("Down", struct{}{}, nil) // want `pool\.Call inside a traced scope drops the trace context`
}

// relay propagates: no diagnostic.
func relay(p *transport.Pool, tc obs.TraceContext) error {
	return p.CallTrace("Down", struct{}{}, nil, tc, 0)
}

// handleGood reads its ctx: no diagnostic.
func (s *server) handleGood(ctx *transport.Ctx, decode func(any) error) (any, error) {
	return nil, s.pool.CallTrace("Down", struct{}{}, nil, ctx.Trace(), 0)
}

// client registers nothing and carries no context; its plain calls
// are legitimate control-plane traffic.
type client struct{ pool *transport.Pool }

func (c *client) ping() error {
	return c.pool.Call("Ping", struct{}{}, nil)
}
