// Package media generates deterministic synthetic multimedia resources.
// It substitutes for the real course material (video clips, audio
// narration, still images, animations, MIDI files) that the paper's
// virtual courses embed: only the sizes, content hashes and transfer
// costs of the resources matter to the database and distribution
// mechanisms, so pseudo-random content with realistic per-kind size
// distributions preserves the behaviour under study.
package media

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/blob"
)

// sizeProfile holds the log-normal size parameters for one media kind.
// Values approximate late-90s course material: short MPEG-1 clips,
// 8-bit audio narration, GIF/JPEG stills, small vector animations and
// tiny MIDI scores.
type sizeProfile struct {
	mu    float64 // mean of ln(bytes)
	sigma float64
	min   int64
	max   int64
	magic []byte // leading bytes marking the synthetic format
}

var profiles = map[blob.Kind]sizeProfile{
	blob.KindVideo:     {mu: math.Log(8 << 20), sigma: 0.6, min: 512 << 10, max: 64 << 20, magic: []byte("SVID")},
	blob.KindAudio:     {mu: math.Log(1 << 20), sigma: 0.5, min: 64 << 10, max: 8 << 20, magic: []byte("SAUD")},
	blob.KindImage:     {mu: math.Log(120 << 10), sigma: 0.7, min: 4 << 10, max: 2 << 20, magic: []byte("SIMG")},
	blob.KindAnimation: {mu: math.Log(600 << 10), sigma: 0.6, min: 32 << 10, max: 8 << 20, magic: []byte("SANI")},
	blob.KindMIDI:      {mu: math.Log(30 << 10), sigma: 0.4, min: 1 << 10, max: 256 << 10, magic: []byte("SMID")},
	blob.KindOther:     {mu: math.Log(64 << 10), sigma: 0.5, min: 1 << 10, max: 1 << 20, magic: []byte("SOTH")},
}

// Resource is one generated multimedia file.
type Resource struct {
	Name string
	Kind blob.Kind
	Data []byte
}

// Generator produces deterministic synthetic media. The same seed always
// yields the same sequence of resources, which keeps every experiment
// reproducible.
type Generator struct {
	rng *rand.Rand
	n   int
	// ScaleDown divides generated sizes, letting tests run the same
	// distribution shape at a fraction of the bytes. Zero means no
	// scaling.
	ScaleDown int64
}

// NewGenerator returns a generator seeded deterministically.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Size draws a size (in bytes) from the kind's log-normal profile.
func (g *Generator) Size(kind blob.Kind) int64 {
	p, ok := profiles[kind]
	if !ok {
		p = profiles[blob.KindOther]
	}
	s := int64(math.Exp(g.rng.NormFloat64()*p.sigma + p.mu))
	if s < p.min {
		s = p.min
	}
	if s > p.max {
		s = p.max
	}
	if g.ScaleDown > 1 {
		s /= g.ScaleDown
		if s < 16 {
			s = 16
		}
	}
	return s
}

// Generate produces the next resource of the given kind.
func (g *Generator) Generate(kind blob.Kind) Resource {
	g.n++
	name := fmt.Sprintf("%s-%04d.%s", kind, g.n, ext(kind))
	size := g.Size(kind)
	data := make([]byte, size)
	p, ok := profiles[kind]
	if !ok {
		p = profiles[blob.KindOther]
	}
	copy(data, p.magic)
	// Fill with pseudo-random bytes; chunked Read keeps it fast.
	g.rng.Read(data[len(p.magic):])
	return Resource{Name: name, Kind: kind, Data: data}
}

// GenerateMix produces a typical lecture-page media mix: with the given
// counts per kind, in a deterministic order.
func (g *Generator) GenerateMix(videos, audios, images, animations, midis int) []Resource {
	var out []Resource
	for i := 0; i < videos; i++ {
		out = append(out, g.Generate(blob.KindVideo))
	}
	for i := 0; i < audios; i++ {
		out = append(out, g.Generate(blob.KindAudio))
	}
	for i := 0; i < images; i++ {
		out = append(out, g.Generate(blob.KindImage))
	}
	for i := 0; i < animations; i++ {
		out = append(out, g.Generate(blob.KindAnimation))
	}
	for i := 0; i < midis; i++ {
		out = append(out, g.Generate(blob.KindMIDI))
	}
	return out
}

func ext(kind blob.Kind) string {
	switch kind {
	case blob.KindVideo:
		return "mpg"
	case blob.KindAudio:
		return "wav"
	case blob.KindImage:
		return "gif"
	case blob.KindAnimation:
		return "ani"
	case blob.KindMIDI:
		return "mid"
	default:
		return "bin"
	}
}
