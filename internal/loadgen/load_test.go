package loadgen

import (
	"testing"
	"time"
)

// The full harness path over real sockets: self-host a small fabric,
// replay a compressed profile through the FabricTarget, and judge the
// report — the in-process twin of `make load-smoke`.
func TestHarnessAgainstSelfHostedFabric(t *testing.T) {
	p, err := ParseProfile([]byte(`
name: harness-e2e
seed: 11
time-scale: 300
fabric:
  stations: 4
  m: 3
  watermark: 2
courses:
  count: 3
  pages: 4
  extra-links: 1
  images-per-page: 1
phases:
  - name: push
    op: broadcast
    start: 0s
    duration: 1m
    rate: 0.05
  - name: storm
    op: resolve
    start: 1m
    duration: 2m
    rate: 0.15
    clients: 2
  - name: lookups
    op: search
    start: 2m
    duration: 1m
    rate: 0.1
    top-k: 5
  - name: edits
    op: checkout
    start: 0s
    duration: 3m
    rate: 0.05
  - name: wrap-up
    op: migrate
    start: 3m
    duration: 1m
    rate: 0.02
slos:
  - op: resolve
    p99: 30s
    max-error-rate: 0
  - op: search
    p99: 30s
    max-error-rate: 0
  - op: broadcast
    max-error-rate: 0
`))
	if err != nil {
		t.Fatal(err)
	}
	host, err := StartHost(p, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	target, err := DialFabric(host.RootAddr(), p.Fabric.Stations, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	plan := BuildPlan(p)
	col, wall, err := Run(p, plan, target, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := target.Stats()
	if err != nil {
		t.Fatal(err)
	}
	report := BuildReport(p, col, wall, stats)
	if !report.Pass {
		t.Fatalf("harness run failed its SLOs: %+v", report.SLOs)
	}
	for kind, want := range plan.OpCounts() {
		if got := report.Ops[kind].Count; got != int64(want) {
			t.Errorf("report counts %d %s ops, plan has %d", got, kind, want)
		}
	}
	if report.Ops["resolve"].Errors != 0 || report.Ops["search"].Errors != 0 {
		t.Errorf("unexpected errors: %+v", report.Ops)
	}
	// The scrape covers every station, and the traffic left footprints:
	// the root served broadcasts, somebody answered searches.
	if len(report.StationStats) != p.Fabric.Stations {
		t.Fatalf("scraped %d stations, fabric has %d", len(report.StationStats), p.Fabric.Stations)
	}
	var rpcs int64
	for _, st := range report.StationStats {
		for _, n := range st.Ops {
			rpcs += n
		}
	}
	if rpcs == 0 {
		t.Error("station stats recorded no RPC activity at all")
	}
	if report.StationStats[0].Pos != 1 {
		t.Errorf("first scraped station is pos %d, want the root", report.StationStats[0].Pos)
	}
}
