// Fixture: a package named atomicio is the implementation of the
// temp-then-rename protocol itself and is exempt from atomicwrite —
// nothing in here may be flagged.
package atomicio

import "os"

func install(tmp, final string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}
