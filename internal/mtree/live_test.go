package mtree

import (
	"reflect"
	"testing"
)

func downSet(positions ...int) func(int) bool {
	set := make(map[int]bool, len(positions))
	for _, p := range positions {
		set[p] = true
	}
	return func(p int) bool { return set[p] }
}

func TestLiveChildrenGraftsDeadSubtreeRoots(t *testing.T) {
	// m=2, 15 stations: children of 1 are {2,3}; 2 is dead, so its
	// children {4,5} graft onto the root. 4 is also dead, so ITS
	// children {8,9} graft too — consecutive failures expand
	// recursively.
	got, err := LiveChildren(1, 2, 15, downSet(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 9, 5, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LiveChildren = %v, want %v", got, want)
	}
	// No failures: identical to Children.
	got, err = LiveChildren(1, 2, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("healthy LiveChildren = %v", got)
	}
}

func TestLiveChildrenChainDegreeOne(t *testing.T) {
	// m=1 degenerates to a chain 1 -> 2 -> 3 -> ... ; a dead middle
	// station grafts the next link onto its parent.
	got, err := LiveChildren(2, 1, 5, downSet(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{4}) {
		t.Errorf("chain LiveChildren = %v, want [4]", got)
	}
	// A dead run collapses the whole stretch onto one sender.
	got, err = LiveChildren(1, 1, 5, downSet(2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{5}) {
		t.Errorf("collapsed chain = %v, want [5]", got)
	}
	// The chain's tail: the last station has no children.
	got, err = LiveChildren(5, 1, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("tail LiveChildren = %v", got)
	}
}

func TestLiveChildrenSingleStationTree(t *testing.T) {
	got, err := LiveChildren(1, 3, 1, downSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("single-station LiveChildren = %v", got)
	}
	if _, err := LiveChildren(2, 3, 1, nil); err == nil {
		t.Error("station beyond the tree accepted")
	}
}

func TestLiveAncestorsSkipsConsecutiveDeadPositions(t *testing.T) {
	// m=2, station 15: root path is 15 -> 7 -> 3 -> 1. With 7 and 3
	// both dead (a consecutive run), the only live ancestor is the
	// root.
	live, err := LiveAncestors(15, 2, downSet(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, []int{1}) {
		t.Errorf("LiveAncestors = %v, want [1]", live)
	}
	nearest, ok, err := NearestLiveAncestor(15, 2, downSet(7, 3))
	if err != nil || !ok || nearest != 1 {
		t.Errorf("NearestLiveAncestor = %d ok=%v err=%v", nearest, ok, err)
	}
	// Only the immediate parent dead: the grandparent is nearest.
	nearest, ok, err = NearestLiveAncestor(15, 2, downSet(7))
	if err != nil || !ok || nearest != 3 {
		t.Errorf("NearestLiveAncestor = %d ok=%v err=%v", nearest, ok, err)
	}
	// Healthy path: the parent itself.
	nearest, ok, err = NearestLiveAncestor(15, 2, nil)
	if err != nil || !ok || nearest != 7 {
		t.Errorf("NearestLiveAncestor = %d ok=%v err=%v", nearest, ok, err)
	}
}

func TestNearestLiveAncestorAllDead(t *testing.T) {
	// Even the root is dead: no live ancestor exists.
	_, ok, err := NearestLiveAncestor(15, 2, downSet(7, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("found a live ancestor on a fully dead path")
	}
	// The root has no ancestors at all.
	live, err := LiveAncestors(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 0 {
		t.Errorf("root LiveAncestors = %v", live)
	}
}

func TestLiveAncestorsChainDegreeOne(t *testing.T) {
	// m=1 chain, station 5: ancestors are 4, 3, 2, 1; a consecutive
	// dead run 4-3 leaves 2 as the nearest live ancestor.
	live, err := LiveAncestors(5, 1, downSet(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, []int{2, 1}) {
		t.Errorf("chain LiveAncestors = %v, want [2 1]", live)
	}
}
