package relstore

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func seedScripts(t *testing.T, db *DB, n int) {
	t.Helper()
	tx, _ := db.Begin()
	for i := 0; i < n; i++ {
		err := tx.Insert("scripts", Row{
			"script_name":  fmt.Sprintf("s%03d", i),
			"author":       fmt.Sprintf("author%d", i%5),
			"version":      int64(i % 7),
			"pct_complete": float64(i),
			"archived":     i%2 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectAllDeterministicOrder(t *testing.T) {
	db := newCourseDB(t)
	seedScripts(t, db, 20)
	rows, err := db.Select(Query{Table: "scripts"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("len = %d", len(rows))
	}
	for i, r := range rows {
		if r["script_name"] != fmt.Sprintf("s%03d", i) {
			t.Fatalf("row %d out of order: %v", i, r["script_name"])
		}
	}
}

func TestSelectEqualityOnPK(t *testing.T) {
	db := newCourseDB(t)
	seedScripts(t, db, 10)
	rows, err := db.Select(Query{Table: "scripts", Conds: []Cond{{Col: "script_name", Op: OpEq, Val: "s004"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["version"] != int64(4) {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestSelectComparisonOperators(t *testing.T) {
	db := newCourseDB(t)
	seedScripts(t, db, 10)
	cases := []struct {
		op   CmpOp
		val  any
		want int
	}{
		{OpLt, 5.0, 5},
		{OpLe, 5.0, 6},
		{OpGt, 5.0, 4},
		{OpGe, 5.0, 5},
		{OpNe, 5.0, 9},
		{OpEq, 5.0, 1},
	}
	for _, c := range cases {
		rows, err := db.Select(Query{Table: "scripts", Conds: []Cond{{Col: "pct_complete", Op: c.op, Val: c.val}}})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != c.want {
			t.Errorf("op %v: got %d rows, want %d", c.op, len(rows), c.want)
		}
	}
}

func TestSelectContainsAndPrefix(t *testing.T) {
	db := newCourseDB(t)
	seedScripts(t, db, 10)
	rows, err := db.Select(Query{Table: "scripts", Conds: []Cond{{Col: "author", Op: OpContains, Val: "thor3"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // author3 appears for i=3 and i=8
		t.Errorf("contains: %d rows, want 2", len(rows))
	}
	rows, err = db.Select(Query{Table: "scripts", Conds: []Cond{{Col: "script_name", Op: OpPrefix, Val: "s00"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("prefix: %d rows, want 10", len(rows))
	}
}

func TestSelectConjunction(t *testing.T) {
	db := newCourseDB(t)
	seedScripts(t, db, 30)
	rows, err := db.Select(Query{Table: "scripts", Conds: []Cond{
		{Col: "archived", Op: OpEq, Val: true},
		{Col: "version", Op: OpEq, Val: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r["archived"] != true || r["version"] != int64(2) {
			t.Fatalf("conjunction violated: %+v", r)
		}
	}
	// i even and i%7==2 for i<30: 2,16,30(excl) -> 2,16. Also 9? 9 odd. 23 odd.
	if len(rows) != 2 {
		t.Errorf("rows = %d, want 2", len(rows))
	}
}

func TestSelectOrderByAndLimit(t *testing.T) {
	db := newCourseDB(t)
	seedScripts(t, db, 10)
	rows, err := db.Select(Query{Table: "scripts", OrderBy: "pct_complete", Desc: true, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0]["pct_complete"] != 9.0 || rows[2]["pct_complete"] != 7.0 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestSelectUsesSecondaryIndex(t *testing.T) {
	db := newCourseDB(t)
	if err := db.CreateIndex("scripts", "author"); err != nil {
		t.Fatal(err)
	}
	seedScripts(t, db, 50)
	rows, err := db.Select(Query{Table: "scripts", Conds: []Cond{{Col: "author", Op: OpEq, Val: "author2"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("indexed select: %d rows, want 10", len(rows))
	}
}

func TestCreateIndexBackfillsAndStaysConsistent(t *testing.T) {
	db := newCourseDB(t)
	seedScripts(t, db, 50) // rows exist before the index
	if err := db.CreateIndex("scripts", "author"); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("scripts", "s002"); err != nil {
		t.Fatal(err)
	}
	if err := db.Update("scripts", "s007", Row{"author": "author0"}); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Select(Query{Table: "scripts", Conds: []Cond{{Col: "author", Op: OpEq, Val: "author2"}}})
	if err != nil {
		t.Fatal(err)
	}
	// author2 originally i%5==2: 2,7,12,...,47 (10 rows); s002 deleted, s007 moved away.
	if len(rows) != 8 {
		t.Fatalf("indexed select after mutations: %d rows, want 8", len(rows))
	}
}

func TestSelectErrors(t *testing.T) {
	db := newCourseDB(t)
	if _, err := db.Select(Query{Table: "nope"}); !errors.Is(err, ErrNoTable) {
		t.Errorf("missing table: %v", err)
	}
	if _, err := db.Select(Query{Table: "scripts", Conds: []Cond{{Col: "zz", Op: OpEq, Val: 1}}}); !errors.Is(err, ErrNoColumn) {
		t.Errorf("missing column: %v", err)
	}
	if _, err := db.Select(Query{Table: "scripts", OrderBy: "zz"}); !errors.Is(err, ErrNoColumn) {
		t.Errorf("missing order column: %v", err)
	}
	if _, err := db.Select(Query{Table: "scripts", Conds: []Cond{{Col: "version", Op: OpEq, Val: "NaN"}}}); !errors.Is(err, ErrType) {
		t.Errorf("bad cond value: %v", err)
	}
}

func TestSelectOne(t *testing.T) {
	db := newCourseDB(t)
	seedScripts(t, db, 4)
	row, err := db.SelectOne(Query{Table: "scripts", Conds: []Cond{{Col: "script_name", Op: OpEq, Val: "s001"}}})
	if err != nil {
		t.Fatal(err)
	}
	if row["script_name"] != "s001" {
		t.Fatalf("row = %+v", row)
	}
	if _, err := db.SelectOne(Query{Table: "scripts", Conds: []Cond{{Col: "script_name", Op: OpEq, Val: "zz"}}}); !errors.Is(err, ErrNotFound) {
		t.Errorf("no match: %v", err)
	}
	if _, err := db.SelectOne(Query{Table: "scripts"}); err == nil {
		t.Error("multiple matches should error")
	}
}

func TestScanEarlyStop(t *testing.T) {
	db := newCourseDB(t)
	seedScripts(t, db, 10)
	var visited int
	err := db.Scan("scripts", func(r Row) bool {
		visited++
		return visited < 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 4 {
		t.Errorf("visited = %d, want 4", visited)
	}
}

// Property: for a random set of mutations, an indexed equality select
// always agrees with a full-scan filter — the index never drifts from
// the table.
func TestQuickIndexMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		err := db.CreateTable(Schema{
			Name: "t",
			Columns: []Column{
				{Name: "id", Type: TInt, NotNull: true},
				{Name: "grp", Type: TInt},
			},
			Key: "id",
		})
		if err != nil {
			return false
		}
		if err := db.CreateIndex("t", "grp"); err != nil {
			return false
		}
		live := make(map[int64]int64)
		for op := 0; op < 300; op++ {
			id := int64(rng.Intn(40))
			grp := int64(rng.Intn(5))
			switch rng.Intn(3) {
			case 0:
				if err := db.Insert("t", Row{"id": id, "grp": grp}); err == nil {
					live[id] = grp
				}
			case 1:
				if err := db.Update("t", id, Row{"grp": grp}); err == nil {
					live[id] = grp
				}
			case 2:
				if err := db.Delete("t", id); err == nil {
					delete(live, id)
				}
			}
		}
		for g := int64(0); g < 5; g++ {
			rows, err := db.Select(Query{Table: "t", Conds: []Cond{{Col: "grp", Op: OpEq, Val: g}}})
			if err != nil {
				return false
			}
			want := 0
			for _, lg := range live {
				if lg == g {
					want++
				}
			}
			if len(rows) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
