// Package mtree implements the full m-ary tree placement arithmetic used
// by the paper's course distribution mechanism (Shih, Ma & Huang, ICPP
// 1999, section 4).
//
// N stations join the database system in a linear order and are arranged
// into a full m-ary tree following a breadth-first order. Stations are
// numbered from 1 (the instructor station is station 1, the root). The
// paper gives two equations, both reproduced here verbatim:
//
//   - the i-th child (1 <= i <= m) of the n-th station sits at linear
//     position m*(n-1) + i + 1, and
//   - the k-th station (k >= 2) has its unique parent at position
//     (k-i-1)/m + 1 where i = (k-1) mod m, taking i = m when the
//     remainder is zero.
//
// On top of the placement arithmetic the package derives broadcast
// schedules (the "broadcast vector" of section 4), propagation round
// counts under the sequential-uplink model, and the adaptive choice of m
// for a given station count and per-media bandwidth.
package mtree

import (
	"errors"
	"fmt"
	"time"
)

// Errors returned by the placement functions.
var (
	ErrBadDegree   = errors.New("mtree: degree m must be >= 1")
	ErrBadStation  = errors.New("mtree: station positions are numbered from 1")
	ErrBadChildIdx = errors.New("mtree: child index must be in [1, m]")
	ErrRootParent  = errors.New("mtree: the root station has no parent")
)

// Child returns the linear position of the i-th child (1 <= i <= m) of
// the station at linear position n in a full m-ary tree, following the
// paper's equation m*(n-1) + i + 1. The result may exceed the number of
// joined stations; callers clip against N themselves or use Children.
func Child(n, i, m int) (int, error) {
	if m < 1 {
		return 0, ErrBadDegree
	}
	if n < 1 {
		return 0, ErrBadStation
	}
	if i < 1 || i > m {
		return 0, ErrBadChildIdx
	}
	return m*(n-1) + i + 1, nil
}

// Parent returns the linear position of the unique parent of the station
// at position k (k >= 2), following the paper's inverse equation
// (k-i-1)/m + 1 with i = (k-1) mod m and i = m when the remainder is 0.
func Parent(k, m int) (int, error) {
	if m < 1 {
		return 0, ErrBadDegree
	}
	if k < 1 {
		return 0, ErrBadStation
	}
	if k == 1 {
		return 0, ErrRootParent
	}
	i := (k - 1) % m
	if i == 0 {
		i = m
	}
	return (k-i-1)/m + 1, nil
}

// ChildIndex returns which child (1-based) station k is of its parent.
func ChildIndex(k, m int) (int, error) {
	if m < 1 {
		return 0, ErrBadDegree
	}
	if k < 2 {
		return 0, ErrRootParent
	}
	i := (k - 1) % m
	if i == 0 {
		i = m
	}
	return i, nil
}

// Children returns the linear positions of every child of station n that
// actually exists among N joined stations.
func Children(n, m, total int) ([]int, error) {
	if m < 1 {
		return nil, ErrBadDegree
	}
	if n < 1 || n > total {
		return nil, ErrBadStation
	}
	var kids []int
	for i := 1; i <= m; i++ {
		c := m*(n-1) + i + 1
		if c > total {
			break
		}
		kids = append(kids, c)
	}
	return kids, nil
}

// Depth returns the level of station k in the tree; the root (station 1)
// has depth 0. It walks the parent chain, which is O(log_m k).
func Depth(k, m int) (int, error) {
	if m < 1 {
		return 0, ErrBadDegree
	}
	if k < 1 {
		return 0, ErrBadStation
	}
	d := 0
	for k > 1 {
		p, err := Parent(k, m)
		if err != nil {
			return 0, err
		}
		k = p
		d++
	}
	return d, nil
}

// Edge is one parent-to-child transfer in the distribution tree.
type Edge struct {
	From int // sender's linear position
	To   int // receiver's linear position
}

// Edges returns every tree edge for N stations joined under degree m, in
// breadth-first order of the receiving station. This is the "broadcast
// vector" of section 4: a linear sequence of stations, each annotated
// with the sender it copies from.
func Edges(total, m int) ([]Edge, error) {
	if m < 1 {
		return nil, ErrBadDegree
	}
	if total < 1 {
		return nil, ErrBadStation
	}
	edges := make([]Edge, 0, total-1)
	for k := 2; k <= total; k++ {
		p, err := Parent(k, m)
		if err != nil {
			return nil, err
		}
		edges = append(edges, Edge{From: p, To: k})
	}
	return edges, nil
}

// AncestorPath returns the chain of stations from k up to the root,
// inclusive of both endpoints. This is the on-demand pull route of
// section 4: a station missing a lecture asks its parent, which asks its
// parent, until an instance is found.
func AncestorPath(k, m int) ([]int, error) {
	if m < 1 {
		return nil, ErrBadDegree
	}
	if k < 1 {
		return nil, ErrBadStation
	}
	path := []int{k}
	for k > 1 {
		p, err := Parent(k, m)
		if err != nil {
			return nil, err
		}
		path = append(path, p)
		k = p
	}
	return path, nil
}

// Rounds returns, for every station 1..N, the round number at which the
// station finishes receiving the broadcast under the sequential-uplink
// model: a station that already holds the data sends one full copy per
// round, serving its children in child-index order, and every holder
// sends concurrently with every other holder. The root holds the data at
// round 0. Under this model the i-th child of station n completes at
// round(n) + i, so the completion round of station k is the sum of the
// child indices along its root path — the classic uplink-serialized
// multicast bound.
func Rounds(total, m int) ([]int, error) {
	if m < 1 {
		return nil, ErrBadDegree
	}
	if total < 1 {
		return nil, ErrBadStation
	}
	rounds := make([]int, total+1)
	for k := 2; k <= total; k++ {
		p, err := Parent(k, m)
		if err != nil {
			return nil, err
		}
		i, err := ChildIndex(k, m)
		if err != nil {
			return nil, err
		}
		rounds[k] = rounds[p] + i
	}
	return rounds[1:], nil
}

// MaxRound returns the completion round of the slowest station under the
// sequential-uplink model (see Rounds).
func MaxRound(total, m int) (int, error) {
	rounds, err := Rounds(total, m)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, r := range rounds {
		if r > max {
			max = r
		}
	}
	return max, nil
}

// LinkModel describes one class of network path between stations, as the
// paper's system "maintains the sizes of m's, based on the number of
// workstations and the physical network bandwidth for different types of
// multimedia data".
type LinkModel struct {
	// Latency is the fixed per-transfer setup cost.
	Latency time.Duration
	// BytesPerSecond is the sustained uplink bandwidth of a station.
	BytesPerSecond float64
}

// HopTime returns the modeled wall-clock duration of one full-bundle
// transfer across a single tree edge.
func (lm LinkModel) HopTime(bundleBytes int64) time.Duration {
	if lm.BytesPerSecond <= 0 {
		return lm.Latency
	}
	secs := float64(bundleBytes) / lm.BytesPerSecond
	return lm.Latency + time.Duration(secs*float64(time.Second))
}

// BroadcastTime returns the modeled completion time of pre-broadcasting
// a bundle of the given size to all N stations using degree m, under the
// sequential-uplink model.
func BroadcastTime(total, m int, bundleBytes int64, lm LinkModel) (time.Duration, error) {
	maxRound, err := MaxRound(total, m)
	if err != nil {
		return 0, err
	}
	return time.Duration(maxRound) * lm.HopTime(bundleBytes), nil
}

// ChooseM returns the degree in [1, maxM] that minimizes the modeled
// broadcast completion time for the given station count, bundle size and
// link model. Ties resolve to the smaller degree (less peak fan-out per
// station). This implements the adaptive-m policy of section 4.
//
// Under the sequential-uplink model the per-hop time is a constant
// factor, so the chosen degree depends only on the station count; use
// ChooseMFanout for the concurrent fan-out model, where the degree
// genuinely trades latency against bandwidth per media type.
func ChooseM(total int, bundleBytes int64, lm LinkModel, maxM int) (int, time.Duration, error) {
	if maxM < 1 {
		return 0, 0, ErrBadDegree
	}
	if total < 1 {
		return 0, 0, ErrBadStation
	}
	bestM, bestT := 1, time.Duration(-1)
	for m := 1; m <= maxM; m++ {
		t, err := BroadcastTime(total, m, bundleBytes, lm)
		if err != nil {
			return 0, 0, err
		}
		if bestT < 0 || t < bestT {
			bestM, bestT = m, t
		}
	}
	return bestM, bestT, nil
}

// FanoutTime returns the modeled completion time of a store-and-forward
// broadcast in which every holder serves its m children concurrently,
// its uplink bandwidth split evenly among them: one tree level costs
// latency + m*size/bandwidth, and the broadcast takes as many levels as
// the deepest station. Small payloads are latency-bound and favor
// shallow trees (large m); large payloads are bandwidth-bound and favor
// small m — the tension behind the paper's per-media adaptive degree.
func FanoutTime(total, m int, bundleBytes int64, lm LinkModel) (time.Duration, error) {
	if total < 1 {
		return 0, ErrBadStation
	}
	depth, err := Depth(total, m)
	if err != nil {
		return 0, err
	}
	perLevel := lm.Latency
	if lm.BytesPerSecond > 0 {
		secs := float64(m) * float64(bundleBytes) / lm.BytesPerSecond
		perLevel += time.Duration(secs * float64(time.Second))
	}
	return time.Duration(depth) * perLevel, nil
}

// ChooseMFanout returns the degree in [1, maxM] minimizing FanoutTime,
// the adaptive policy "based on the number of workstations and the
// physical network bandwidth for different types of multimedia data".
func ChooseMFanout(total int, bundleBytes int64, lm LinkModel, maxM int) (int, time.Duration, error) {
	if maxM < 1 {
		return 0, 0, ErrBadDegree
	}
	if total < 1 {
		return 0, 0, ErrBadStation
	}
	bestM, bestT := 1, time.Duration(-1)
	for m := 1; m <= maxM; m++ {
		t, err := FanoutTime(total, m, bundleBytes, lm)
		if err != nil {
			return 0, 0, err
		}
		if bestT < 0 || t < bestT {
			bestM, bestT = m, t
		}
	}
	return bestM, bestT, nil
}

// Validate checks that the pair of placement equations is mutually
// consistent for every station in [2, N]: Parent(Child(n, i)) == n and
// ChildIndex(Child(n, i)) == i. It exists so deployments can self-check
// a configured degree before building a broadcast vector.
func Validate(total, m int) error {
	if m < 1 {
		return ErrBadDegree
	}
	for k := 2; k <= total; k++ {
		p, err := Parent(k, m)
		if err != nil {
			return err
		}
		i, err := ChildIndex(k, m)
		if err != nil {
			return err
		}
		c, err := Child(p, i, m)
		if err != nil {
			return err
		}
		if c != k {
			return fmt.Errorf("mtree: inconsistent placement at station %d (degree %d): parent %d child %d resolves to %d", k, m, p, i, c)
		}
	}
	return nil
}
