package cluster

import (
	"fmt"
	"time"

	"repro/internal/mtree"
	"repro/internal/schema"
)

// Station failure handling. The paper assumes stations join and stay;
// a deployed system loses workstations mid-semester, so the
// distribution layer routes around marked-down stations: broadcasts
// graft a failed station's children onto its nearest live ancestor, and
// on-demand pulls skip dead holders on the ancestor path.

// down tracks failed stations; lazily allocated.
func (c *Cluster) downSet() map[int]bool {
	if c.down == nil {
		c.down = make(map[int]bool)
	}
	return c.down
}

// MarkDown simulates a station failure. The root (instructor station)
// cannot be marked down.
func (c *Cluster) MarkDown(pos int) error {
	if pos == 1 {
		return fmt.Errorf("%w: the instructor station cannot fail", ErrBadConfig)
	}
	if _, err := c.Station(pos); err != nil {
		return err
	}
	c.downSet()[pos] = true
	return nil
}

// MarkUp returns a failed station to service. Its document store kept
// whatever it held before the failure.
func (c *Cluster) MarkUp(pos int) error {
	if _, err := c.Station(pos); err != nil {
		return err
	}
	delete(c.downSet(), pos)
	return nil
}

// Down reports whether a station is marked failed.
func (c *Cluster) Down(pos int) bool { return c.down[pos] }

// liveChildren expands a station's children, replacing failed children
// by their own (recursively expanded) children — the grafting rule for
// routing a broadcast around failures. The arithmetic lives in
// mtree.LiveChildren so the live TCP fabric repairs its tree with
// exactly the rule the simulator models.
func (c *Cluster) liveChildren(pos int) ([]int, error) {
	return mtree.LiveChildren(pos, c.cfg.M, c.Size(), func(p int) bool { return c.down[p] })
}

// PreBroadcastChunked pushes the lecture bundle down the m-ary tree cut
// into chunks of the given size, relaying each chunk as soon as it is
// received instead of waiting for the whole bundle (store-and-forward).
// Pipelining removes the depth penalty: deep stations stream behind
// their ancestors instead of waiting for full copies. Returns the
// per-station completion offsets and the bundle size. Failed stations
// are routed around and report a zero completion time.
func (c *Cluster) PreBroadcastChunked(url string, chunkBytes int64) ([]time.Duration, int64, error) {
	if chunkBytes <= 0 {
		return nil, 0, fmt.Errorf("%w: chunk size %d", ErrBadConfig, chunkBytes)
	}
	root := c.stations[0]
	bundle, err := root.Store.ExportBundle(url)
	if err != nil {
		return nil, 0, err
	}
	size := bundle.TotalBytes()
	chunks := int((size + chunkBytes - 1) / chunkBytes)
	lastChunk := size - int64(chunks-1)*chunkBytes

	start := c.sim.Now()
	times := make([]time.Duration, c.Size())
	received := make([]int, c.Size()+1)
	var failure error

	// relay forwards one received chunk from a station to its live
	// children, and completes the station when the bundle is whole.
	var relay func(pos, chunk int, at time.Duration)
	deliver := func(pos, chunk int, at time.Duration) {
		received[pos]++
		if received[pos] == chunks {
			st := c.stations[pos-1]
			if _, err := st.Store.ImportBundle(bundle, pos, false); err != nil {
				failure = err
				return
			}
			times[pos-1] = at - start
		}
		relay(pos, chunk, at)
	}
	relay = func(pos, chunk int, at time.Duration) {
		kids, err := c.liveChildren(pos)
		if err != nil {
			failure = err
			return
		}
		sz := chunkBytes
		if chunk == chunks-1 {
			sz = lastChunk
		}
		for _, kid := range kids {
			kid := kid
			if err := c.sim.Transfer(c.ids[pos-1], c.ids[kid-1], sz, func(done time.Duration) {
				deliver(kid, chunk, done)
			}); err != nil {
				failure = err
				return
			}
		}
	}
	for chunk := 0; chunk < chunks; chunk++ {
		relay(1, chunk, start)
	}
	c.sim.Run()
	return times, size, failure
}

// PreBroadcastResilient behaves like PreBroadcast but routes around
// failed stations (store-and-forward over the grafted live tree).
func (c *Cluster) PreBroadcastResilient(url string) ([]time.Duration, int64, error) {
	root := c.stations[0]
	bundle, err := root.Store.ExportBundle(url)
	if err != nil {
		return nil, 0, err
	}
	size := bundle.TotalBytes()
	start := c.sim.Now()
	times := make([]time.Duration, c.Size())
	var failure error
	var forward func(pos int)
	forward = func(pos int) {
		kids, err := c.liveChildren(pos)
		if err != nil {
			failure = err
			return
		}
		for _, kid := range kids {
			kid := kid
			if err := c.sim.Transfer(c.ids[pos-1], c.ids[kid-1], size, func(at time.Duration) {
				st := c.stations[kid-1]
				if _, err := st.Store.ImportBundle(bundle, kid, false); err != nil {
					failure = err
					return
				}
				times[kid-1] = at - start
				forward(kid)
			}); err != nil {
				failure = err
				return
			}
		}
	}
	forward(1)
	c.sim.Run()
	return times, size, failure
}

// holderOnLivePath is holderOnPath restricted to live stations: the
// on-demand pull walks the ancestor route, skipping failed holders —
// mtree.LiveAncestors, the same rule the live fabric's Resolve uses.
func (c *Cluster) holderOnLivePath(pos int, url string) (*Station, error) {
	live, err := mtree.LiveAncestors(pos, c.cfg.M, func(p int) bool { return c.down[p] })
	if err != nil {
		return nil, err
	}
	for _, p := range append([]int{pos}, live...) {
		st := c.stations[p-1]
		obj, err := st.Store.ObjectByURL(url)
		if err != nil {
			continue
		}
		if obj.Form == schema.FormInstance || obj.Form == schema.FormClass {
			return st, nil
		}
	}
	return nil, fmt.Errorf("%w: %s from station %d (live path)", ErrNoInstance, url, pos)
}

// FetchOnDemandResilient retrieves a document for a live station,
// skipping failed holders on the ancestor route. The requesting station
// must itself be live.
func (c *Cluster) FetchOnDemandResilient(pos int, url string) (FetchResult, error) {
	if c.down[pos] {
		return FetchResult{}, fmt.Errorf("%w: station %d is down", ErrNoStation, pos)
	}
	st, err := c.Station(pos)
	if err != nil {
		return FetchResult{}, err
	}
	if obj, err := st.Store.ObjectByURL(url); err == nil && obj.Form != schema.FormReference {
		return FetchResult{Local: true, ServedBy: pos}, nil
	}
	holder, err := c.holderOnLivePath(pos, url)
	if err != nil {
		return FetchResult{}, err
	}
	bundle, err := holder.Store.ExportBundle(url)
	if err != nil {
		return FetchResult{}, err
	}
	size := bundle.TotalBytes()
	begin := c.sim.Now()
	var finished time.Duration
	if err := c.sim.Transfer(c.ids[holder.Pos-1], c.ids[pos-1], size, func(at time.Duration) {
		finished = at
	}); err != nil {
		return FetchResult{}, err
	}
	c.sim.Run()
	st.fetches[url]++
	res := FetchResult{Latency: finished - begin, ServedBy: holder.Pos, Bytes: size}
	if c.cfg.Watermark >= 0 && st.fetches[url] > c.cfg.Watermark {
		if _, err := st.Store.ImportBundle(bundle, pos, false); err != nil {
			return FetchResult{}, err
		}
		res.Replicated = true
	}
	return res, nil
}
