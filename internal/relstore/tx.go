package relstore

import "fmt"

// undoOp reverses one mutation when a transaction rolls back.
type undoOp struct {
	table string
	pk    string
	// before == nil means the op inserted a new row (undo = delete);
	// inserted == false && before != nil means update (undo = restore);
	// deleted rows carry before != nil with inserted == false as well,
	// distinguished by present == false.
	before  Row
	present bool // row existed before the mutation
}

// walRec is one redo record for the write-ahead log.
type walRec struct {
	Op    string  `json:"op"` // insert | update | delete | create | drop
	Table string  `json:"table"`
	Row   Row     `json:"row,omitempty"`
	PK    any     `json:"pk,omitempty"`
	DDL   *Schema `json:"ddl,omitempty"`
}

// Tx is a write transaction. The engine uses a single-writer model: the
// transaction holds the database write lock from Begin until Commit or
// Rollback. Rollback restores the exact pre-transaction state.
type Tx struct {
	db   *DB
	undo []undoOp
	redo []walRec
	done bool
}

// Begin opens a write transaction, blocking other writers.
func (db *DB) Begin() (*Tx, error) {
	db.mu.Lock()
	return &Tx{db: db}, nil
}

// Commit makes the transaction's effects durable (appending to the WAL
// when one is attached) and releases the write lock.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	var err error
	if tx.db.wal != nil && len(tx.redo) > 0 {
		err = tx.db.wal.append(tx.redo)
	}
	tx.db.mu.Unlock()
	return err
}

// Rollback undoes every mutation made through the transaction and
// releases the write lock.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	// Undo in reverse order.
	for i := len(tx.undo) - 1; i >= 0; i-- {
		op := tx.undo[i]
		t := tx.db.tables[op.table]
		if t == nil {
			continue
		}
		cur, exists := t.rows[op.pk]
		if exists {
			delete(t.rows, op.pk)
			for _, ix := range t.indexes {
				ix.remove(cur[ix.column], op.pk)
			}
			t.orderedRemove(cur, op.pk)
		}
		if op.present {
			t.rows[op.pk] = op.before
			for _, ix := range t.indexes {
				ix.add(op.before[ix.column], op.pk)
			}
			t.orderedAdd(op.before, op.pk)
		}
		t.dirty = true
	}
	tx.db.mu.Unlock()
	return nil
}

// Insert adds a row inside the transaction.
func (tx *Tx) Insert(tableName string, r Row) error {
	if tx.done {
		return ErrTxDone
	}
	t, ok := tx.db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	row, err := t.normalizeRow(r, true)
	if err != nil {
		return err
	}
	pk, err := tx.db.insertLocked(t, row)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoOp{table: tableName, pk: pk})
	tx.redo = append(tx.redo, walRec{Op: "insert", Table: tableName, Row: row})
	return nil
}

// Update merges column changes into an existing row inside the
// transaction. Changing the primary-key column is rejected.
func (tx *Tx) Update(tableName string, pkVal any, changes Row) error {
	if tx.done {
		return ErrTxDone
	}
	t, ok := tx.db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	keyCol, _ := t.schema.column(t.schema.Key)
	cv, err := coerce(keyCol.Type, pkVal)
	if err != nil {
		return err
	}
	pk := encodeKey(cv)
	old, ok := t.rows[pk]
	if !ok {
		return fmt.Errorf("%w: %s[%v]", ErrNotFound, tableName, pkVal)
	}
	norm, err := t.normalizeRow(changes, false)
	if err != nil {
		return err
	}
	if nv, touched := norm[t.schema.Key]; touched && compareValues(nv, old[t.schema.Key]) != 0 {
		return fmt.Errorf("%w: %s[%v]", ErrKeyChange, tableName, pkVal)
	}
	merged := old.Clone()
	for k, v := range norm {
		merged[k] = v
	}
	// Re-validate NOT NULL on the merged row and re-check foreign keys.
	for _, col := range t.schema.Columns {
		if col.NotNull && merged[col.Name] == nil {
			return fmt.Errorf("%w: %s.%s", ErrNull, tableName, col.Name)
		}
	}
	if err := tx.db.checkFKs(t, merged); err != nil {
		return err
	}
	for _, ix := range t.indexes {
		ix.remove(old[ix.column], pk)
		ix.add(merged[ix.column], pk)
	}
	t.orderedRemove(old, pk)
	t.orderedAdd(merged, pk)
	t.rows[pk] = merged
	t.dirty = true
	tx.undo = append(tx.undo, undoOp{table: tableName, pk: pk, before: old, present: true})
	tx.redo = append(tx.redo, walRec{Op: "update", Table: tableName, PK: cv, Row: norm})
	return nil
}

// Delete removes a row inside the transaction, enforcing referential
// integrity (restrict semantics).
func (tx *Tx) Delete(tableName string, pkVal any) error {
	if tx.done {
		return ErrTxDone
	}
	t, ok := tx.db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	keyCol, _ := t.schema.column(t.schema.Key)
	cv, err := coerce(keyCol.Type, pkVal)
	if err != nil {
		return err
	}
	pk := encodeKey(cv)
	old, err := tx.db.deleteLocked(t, pk)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoOp{table: tableName, pk: pk, before: old, present: true})
	tx.redo = append(tx.redo, walRec{Op: "delete", Table: tableName, PK: cv})
	return nil
}
