// Virtuallibrary demonstrates the Web document virtual library of
// section 5: an instructor catalogs fifty courses, students browse by
// keyword, instructor and course number, check lecture notes out and
// in, and the ledger produces the study-performance assessment.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/library"
	"repro/internal/relstore"
	"repro/internal/workload"
)

func main() {
	store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		log.Fatal(err)
	}
	base := time.Date(1999, 4, 21, 8, 0, 0, 0, time.UTC)
	tick := 0
	store.Now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Minute)
	}
	if err := store.CreateDatabase(docdb.Database{Name: "mmu", Author: "registrar"}); err != nil {
		log.Fatal(err)
	}

	lib := library.New(store)
	lib.RegisterInstructor("Shih")

	// Fifty courses with Zipf-weighted keywords from a shared
	// vocabulary.
	vocab := workload.Vocabulary(200)
	rng := rand.New(rand.NewSource(21))
	instructors := []string{"Shih", "Ma", "Huang", "Chang", "Lee"}
	titles := []string{
		"Introduction to Computer Engineering",
		"Introduction to Multimedia Computing",
		"Introduction to Engineering Drawing",
		"Data Structures over the Web",
		"Distance Learning Systems",
	}
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("course-%03d", i)
		err := store.CreateScript(docdb.Script{
			Name:        name,
			DBName:      "mmu",
			Author:      instructors[i%len(instructors)],
			Keywords:    workload.PickKeywords(rng, vocab, 4),
			Description: titles[i%len(titles)],
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := lib.Add(name, fmt.Sprintf("MMU-%03d", i), "Shih"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("catalog holds %d courses\n", len(lib.Catalog()))

	// Browse the library the three ways the paper lists: keywords,
	// instructor names, course numbers/titles.
	kw := workload.PickKeywords(rng, vocab, 1)
	hits := lib.Search(library.Query{Keywords: kw})
	fmt.Printf("keyword %q: %d hit(s)\n", kw[0], len(hits))

	hits = lib.Search(library.Query{Instructor: "Ma"})
	fmt.Printf("instructor Ma: %d hit(s)\n", len(hits))

	hits = lib.Search(library.Query{Course: "multimedia"})
	fmt.Printf("title fragment 'multimedia': %d hit(s)\n", len(hits))

	hits = lib.Search(library.Query{Course: "MMU-007"})
	if len(hits) != 1 {
		log.Fatalf("course number search returned %d hits", len(hits))
	}
	fmt.Printf("course number MMU-007 -> %s (%s)\n", hits[0].Entry.ScriptName, hits[0].Entry.Title)

	// Students check lecture notes out and in; nothing limits how many
	// pages a student holds.
	students := []string{"alice", "bob", "carol"}
	for round := 0; round < 3; round++ {
		for _, s := range students {
			doc := fmt.Sprintf("course-%03d", rng.Intn(50))
			co, err := lib.CheckOut(doc, s)
			if err != nil {
				log.Fatal(err)
			}
			// alice returns everything promptly; bob keeps things out.
			if s != "bob" || round == 0 {
				if err := lib.CheckIn(co); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	fmt.Println("\nassessment from the check-in/check-out ledger:")
	for _, s := range students {
		a, err := lib.Assess(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %d checkouts, %d distinct, %d still out, %v reading, score %.1f\n",
			s, a.Checkouts, a.DistinctDocs, a.Open, a.TotalDuration, a.Score)
	}
}
