package fabric

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/transport"
)

// Federation-wide full-text search: the scatter-gather querying of the
// Distributed XML-Query Network mapped onto the paper's m-ary
// distribution tree. A query issued at ANY station is forwarded to the
// root (one hop — every roster carries the root's address), which
// scatters it down the tree: each station answers from its local
// content index (internal/search, attached through docdb's
// ContentIndex extension point) and fans out to its children in
// parallel, merging the bounded top-k result sets on the way back up.
// The whole federation is covered in O(depth) round trips, each hop
// carrying at most TopK hits.
//
// Failure handling reuses the tree-repair machinery: a dead child's
// subtree is grafted onto the sender and queried directly, with the
// dead hop reported per station. Because a search is a read-only,
// idempotent operation, even timed-out hops are safe to graft around
// (re-querying a subtree at worst re-returns hits the merge
// deduplicates) — unlike broadcasts, where re-delivery would duplicate
// work. Reference-only stations answer from their index (catalog
// metadata and whatever content they hold) without materializing any
// BLOBs.

// searchCallTimeout bounds one scatter hop. A subtree that cannot
// answer within it is re-queried through the graft path, so a slow
// interior station delays the gather by at most one timeout per tree
// level rather than stalling the query forever.
const searchCallTimeout = 15 * time.Second

// SearchRequest carries one federation query. Client entries (from
// webdocctl, the Web UI or Station.Search) leave Scatter false: the
// receiving station forwards to the root, which stamps the topology
// and scatters. Scatter hops carry the epoch-numbered roster like
// every other tree RPC.
type SearchRequest struct {
	Terms     []string
	Phrase    bool
	TopK      int
	Scatter   bool
	M         int
	N         int
	Watermark int
	Epoch     int
	Roster    map[int]string
	Down      map[int]bool
}

// SearchReply aggregates a subtree's answer: the merged top-k hits and
// one result entry per station covered (Err set for dead hops).
// TraceID (stamped by the entry hop) names the query's distributed
// trace.
type SearchReply struct {
	Hits     []search.Hit
	TraceID  uint64
	Stations []StationResult
}

// Search answers a federation-wide full-text query from this station:
// served by the root's scatter-gather over the distribution tree, with
// this station's only extra cost the round trip to the root.
func (s *Station) Search(q search.Query) (*SearchReply, error) {
	span := s.observer().BeginLocal(methodSearch)
	reply, err := s.searchSpanned(q, span)
	span.End(err)
	return reply, err
}

func (s *Station) searchSpanned(q search.Query, span *obs.ActiveSpan) (*SearchReply, error) {
	v := s.view()
	if v.pos == 0 {
		return nil, ErrNotJoined
	}
	trace := span.Context().TraceID
	// A term-less query matches nothing anywhere; answer it here
	// instead of scattering one RPC per station for an empty reply.
	if len(search.NormalizeTerms(q.Terms)) == 0 {
		return &SearchReply{TraceID: trace}, nil
	}
	if v.isRoot {
		reply := s.scatterSearch(v, q, span)
		reply.TraceID = trace
		return &reply, nil
	}
	rootAddr := v.roster[1]
	if rootAddr == "" {
		return nil, fmt.Errorf("fabric: no root address in roster")
	}
	req := SearchRequest{Terms: q.Terms, Phrase: q.Phrase, TopK: q.TopK}
	var reply SearchReply
	if err := s.pool(rootAddr).CallTrace(methodSearch, req, &reply, span.Context(), 0); err != nil {
		return nil, fmt.Errorf("fabric: forwarding search to root: %w", err)
	}
	reply.TraceID = trace
	return &reply, nil
}

// handleSearch serves both roles of the search RPC. A client entry
// (Scatter false) is forwarded to the root — or, on the root, turned
// into the scatter. A scatter hop folds the carried topology in,
// answers locally and relays down its subtree. Either way the hop's
// span context travels onward, so one TraceID covers the entry hop,
// the root and every scatter hop.
func (s *Station) handleSearch(ctx *transport.Ctx, decode func(any) error) (any, error) {
	var req SearchRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	q := search.Query{Terms: req.Terms, Phrase: req.Phrase, TopK: req.TopK}
	if !req.Scatter {
		// Client entry: exactly Station.Search's protocol (forward to
		// the root, or scatter when this station is the root).
		reply, err := s.searchSpanned(q, ctx.Span())
		if err != nil {
			return nil, err
		}
		return *reply, nil
	}
	s.mu.Lock()
	s.applyTopology(req.M, req.N, req.Watermark, req.Epoch, req.Roster, req.Down)
	pos := s.pos
	s.mu.Unlock()
	if pos == 0 {
		return nil, ErrNotJoined
	}
	return s.gatherSubtree(pos, req, q, ctx.Span()), nil
}

// scatterSearch runs the root's side of a query: stamp the topology
// into the scatter request and gather the whole tree.
func (s *Station) scatterSearch(v view, q search.Query, span *obs.ActiveSpan) SearchReply {
	req := SearchRequest{
		Terms: q.Terms, Phrase: q.Phrase, TopK: q.TopK, Scatter: true,
		M: v.m, N: v.n, Watermark: v.watermark,
		Epoch: v.epoch, Roster: v.roster, Down: v.down,
	}
	return s.gatherSubtree(v.pos, req, q, span)
}

// gatherSubtree answers for one station and everything below it: local
// hits from the content index, children covered through the repairing
// fan-out, and one bounded top-k merge before the reply travels up —
// the per-hop merge that keeps every transfer O(k) no matter how large
// the subtree.
func (s *Station) gatherSubtree(pos int, req SearchRequest, q search.Query, span *obs.ActiveSpan) SearchReply {
	local := s.localHits(q, pos)
	agg := s.searchFanOut(pos, req, span)
	return SearchReply{
		Hits:     search.Merge(q.TopK, local, agg.Hits),
		Stations: append([]StationResult{{Pos: pos}}, agg.Stations...),
	}
}

// localHits queries this station's content index, stamping the hits
// with the station position. A station without an attached index (or
// one whose index lacks the query capability) contributes nothing but
// still relays — the tree must stay connected.
func (s *Station) localHits(q search.Query, pos int) []search.Hit {
	ix, ok := s.store.ContentIndex().(search.Searcher)
	if !ok {
		return nil
	}
	hits := ix.Search(q)
	for i := range hits {
		hits[i].Station = pos
	}
	return hits
}

// searchFanOut relays the scatter to every child subtree with the
// shared grafting rule. Unlike pushes, a timed-out child is also
// grafted around (transport.Unreachable, not canRouteAround): the
// query is idempotent and the merge deduplicates, so re-covering a
// subtree is safe, while waiting out a wedged station is not.
func (s *Station) searchFanOut(pos int, req SearchRequest, span *obs.ActiveSpan) treeAgg {
	tc := span.Context()
	return s.fanOutTree(span, pos, req.M, req.N, req.Roster, transport.Unreachable, func(addr string) (treeAgg, error) {
		var reply SearchReply
		if err := s.callSearchWithRetry(addr, req, &reply, tc); err != nil {
			return treeAgg{}, err
		}
		return treeAgg{Stations: reply.Stations, Hits: reply.Hits}, nil
	})
}

// callSearchWithRetry is callWithRetry with the search rules: a short
// per-hop timeout and retries for every unreachable classification
// (timeouts included — the operation is idempotent).
func (s *Station) callSearchWithRetry(addr string, req SearchRequest, reply *SearchReply, tc obs.TraceContext) error {
	var err error
	for attempt := 0; attempt < pushAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(pushRetryDelay)
		}
		err = s.pool(addr).CallTrace(methodSearch, req, reply, tc, searchCallTimeout)
		if err == nil || !transport.Unreachable(err) {
			return err
		}
	}
	return err
}
