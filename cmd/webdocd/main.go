// Command webdocd runs one Web document database station as a network
// daemon: the deployed form of a station in the paper's three-tier
// architecture. It hosts the embedded relational engine, the BLOB store
// and the document layer, and serves the station RPC protocol (Ping,
// Bundle, Import, SQL) over TCP.
//
// Stations can run standalone or join a live distribution fabric (the
// m-ary tree of the paper's section 4):
//
//	webdocd -addr 127.0.0.1:7070 -root -m 2 -seed-course 40
//	webdocd -addr 127.0.0.1:7071 -join 127.0.0.1:7070
//	webdocd -addr 127.0.0.1:7072 -join 127.0.0.1:7070
//	webdocd -data station1.d    # durable: checkpoints + WAL tail
//
// Durability is generation-numbered: the -data directory holds the
// latest checkpoint (relational snapshot plus BLOB sidecar, each
// written temp-then-rename) and the write-ahead-log tail appended
// since. A background checkpointer compacts the log when the tail
// crosses -checkpoint-bytes or every -checkpoint-every, SIGTERM takes
// a final checkpoint, and a restart loads the checkpoint and replays
// only the tail — so restart cost is bounded by the checkpoint
// interval, and a SIGKILL at any instant loses nothing that was
// checkpointed. The old single-file layout (-wal station1.wal plus its
// .blobs sidecar) is still accepted: the legacy log is replayed once,
// checkpointed into PATH.d, and renamed aside.
//
// A -root station is the instructor station (position 1) and the join
// authority; -join stations contact it, are assigned the next linear
// position, and serve broadcast/resolve/migrate traffic along the tree.
// With -seed-course N the daemon authors a synthetic N-page course on
// startup so a fresh deployment has something to serve.
//
// The root heartbeats every joined station (-heartbeat tunes the
// probe interval; 0 disables) and routes broadcasts and resolves
// around stations it declares dead. A station that was killed and
// restarted rejoins with
//
//	webdocd -addr 127.0.0.1:7072 -join 127.0.0.1:7070 -rejoin -pos 3
//
// asking for its old position back (-pos; same-address restarts get it
// back automatically) and then catching up on the broadcasts it missed
// — reference scaffolds first, full bundles via the parent route under
// the watermark policy.
package main

import (
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/docdb"
	"repro/internal/fabric"
	"repro/internal/library"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/search"
	"repro/internal/webui"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address")
		httpAddr   = flag.String("http", "", "serve the Web-savvy virtual library UI on this address (empty disables)")
		pos        = flag.Int("pos", 1, "station position in the linear joining order (standalone mode; with -rejoin: the position to reclaim)")
		dataDir    = flag.String("data", "", "durability directory: checkpoint generations + WAL tail (empty disables persistence)")
		walPath    = flag.String("wal", "", "durability base path: data lands in PATH.d; a legacy single-file WAL at PATH is migrated in once")
		ckptBytes  = flag.Int64("checkpoint-bytes", 64<<20, "checkpoint when the WAL tail exceeds this many bytes (0 disables the size trigger)")
		ckptEvery  = flag.Duration("checkpoint-every", 0, "checkpoint on this interval (0 disables the timer trigger)")
		seedCourse = flag.Int("seed-course", 0, "author a synthetic course with this many pages on startup")
		root       = flag.Bool("root", false, "act as the distribution fabric root (instructor station, position 1)")
		joinAddr   = flag.String("join", "", "join the distribution fabric via this root address")
		rejoin     = flag.Bool("rejoin", false, "with -join: reclaim the previous position (-pos) and catch up on missed broadcasts")
		degree     = flag.Int("m", 2, "distribution tree degree (root mode)")
		watermark  = flag.Int("watermark", 1, "watermark frequency: fetches beyond this replicate locally (root mode; negative never replicates)")
		heartbeat  = flag.Duration("heartbeat", fabric.DefaultHeartbeatInterval, "root mode: probe joined stations this often and declare the unresponsive ones dead (0 disables)")
		debugAddr  = flag.String("debug-addr", "", "serve pprof and expvar diagnostics on this address (bare :port binds loopback; empty disables)")
		logEvents  = flag.Bool("log-events", false, "log structured one-line records for fault-path events (suspicion, grafts, rejoins, checkpoints)")
	)
	flag.Parse()
	if *dataDir != "" && *walPath != "" {
		log.Fatal("webdocd: -data and -wal are mutually exclusive (-wal is the legacy spelling)")
	}
	if *root && *joinAddr != "" {
		log.Fatal("webdocd: -root and -join are mutually exclusive")
	}
	if *rejoin && *joinAddr == "" {
		log.Fatal("webdocd: -rejoin requires -join")
	}
	if *rejoin && *pos < 2 {
		log.Fatal("webdocd: -rejoin requires -pos >= 2 (the position to reclaim)")
	}

	rel := relstore.NewDB()
	blobs := blob.NewStore()
	store, err := docdb.Open(rel, blobs)
	if err != nil {
		log.Fatalf("webdocd: opening store: %v", err)
	}
	// The content index attaches before recovery so a restart can
	// restore it from the search-<gen> sidecar (or rebuild it from the
	// recovered rows); from here on the write hooks keep it current.
	if _, err := search.Attach(store); err != nil {
		log.Fatalf("webdocd: attaching content index: %v", err)
	}
	dir := *dataDir
	if dir == "" && *walPath != "" {
		dir = *walPath + ".d"
	}
	if dir != "" {
		// A legacy single-file WAL replays into the engine before the
		// durability directory attaches; see prepareLegacyMigration
		// for the crash-safety argument.
		migrating := false
		if *walPath != "" {
			migrating = prepareLegacyMigration(rel, blobs, *walPath, dir)
		}
		// Recover restores the newest checkpoint generation (relational
		// snapshot + BLOB sidecar), chain-replays the WAL tail, resyncs
		// the ID counter and attaches the tail for appends.
		rec, err := store.Recover(dir)
		if err != nil {
			log.Fatalf("webdocd: recovering %s: %v", dir, err)
		}
		if rec.Gen > 0 || rec.Applied > 0 {
			log.Printf("webdocd: recovered checkpoint generation %d, replayed %d tail transaction(s)", rec.Gen, rec.Applied)
		}
		if migrating {
			// Commit the migration: checkpoint the replayed state into
			// the directory, then retire the legacy files. The rename
			// is the commit point — until it happens, a crash just
			// redoes the whole migration from the legacy file.
			if _, err := store.CheckpointNow(); err != nil {
				log.Fatalf("webdocd: checkpointing migrated state: %v", err)
			}
			archiveLegacy(*walPath)
			archiveLegacy(*walPath + ".blobs")
			log.Printf("webdocd: migrated legacy WAL %s into %s", *walPath, dir)
		}
	}

	lib := library.New(store)
	lib.RegisterInstructor("instructor")

	// Start serving. In fabric mode the socket must be up before the
	// join handshake (the root pushes bundles back to it); standalone
	// stations seed first, serve after, like the original daemon.
	var (
		bound      string
		stationPos int
		stop       func() error
		station    *fabric.Station // non-nil in fabric mode
		statsNode  *cluster.Node   // the serving node, for diagnostics
	)
	switch {
	case *root:
		// The root is position 1 and needs no peer to seed, so the
		// course exists before the banner appears and the first
		// broadcast can never race the seeding.
		seed(store, lib, 1, *seedCourse)
		st, err := fabric.NewRoot(store, *addr, *degree, *watermark)
		if err != nil {
			log.Fatalf("webdocd: starting fabric root: %v", err)
		}
		if *heartbeat > 0 {
			if err := st.StartHeartbeat(*heartbeat, 0); err != nil {
				log.Fatalf("webdocd: starting heartbeat: %v", err)
			}
		}
		bound, stationPos, stop, station, statsNode = st.Addr(), st.Pos(), st.Close, st, st.Node()
		fmt.Printf("webdocd: station %d serving on %s (fabric root, m=%d, watermark=%d)\n",
			stationPos, bound, *degree, *watermark)
	case *joinAddr != "":
		var st *fabric.Station
		var err error
		if *rejoin {
			st, err = fabric.Rejoin(store, *addr, *joinAddr, *pos)
		} else {
			st, err = fabric.Join(store, *addr, *joinAddr)
		}
		if err != nil {
			log.Fatalf("webdocd: joining fabric: %v", err)
		}
		// A joiner learns its position from the root, so it can only
		// seed after the handshake; the banner waits for the seed.
		seed(store, lib, st.Pos(), *seedCourse)
		if *rejoin {
			// Reconcile with whatever was broadcast while this station
			// was dark, before announcing readiness.
			res, err := st.CatchUp()
			if err != nil {
				log.Printf("webdocd: catch-up incomplete: %v", err)
			} else {
				log.Printf("webdocd: caught up: %d reference(s) imported, %d broadcast(s) re-pulled, %d stale instance(s) reclaimed",
					res.References, len(res.Resolved), res.Migrated)
			}
		}
		bound, stationPos, stop, station, statsNode = st.Addr(), st.Pos(), st.Close, st, st.Node()
		fmt.Printf("webdocd: station %d serving on %s (joined fabric via %s)\n",
			stationPos, bound, *joinAddr)
	default:
		stationPos = *pos
		seed(store, lib, stationPos, *seedCourse)
		node := cluster.NewNode(stationPos, store)
		b, err := node.Start(*addr)
		if err != nil {
			log.Fatalf("webdocd: listen: %v", err)
		}
		bound, stop, statsNode = b, node.Close, node
		fmt.Printf("webdocd: station %d serving on %s\n", stationPos, bound)
	}

	var evSink obs.EventSink
	if *logEvents {
		evSink = func(line string) { log.Printf("webdocd: %s", line) }
		if station != nil {
			station.SetEventSink(evSink)
		}
	}
	if *debugAddr != "" {
		startDebugServer(*debugAddr, statsNode)
	}

	if *httpAddr != "" {
		ui := webui.New(lib, store)
		ui.Observer = statsNode.Observer()
		if station != nil {
			// Fabric stations offer the federated full-text mode: the
			// query rides to the root and scatter-gathers the tree.
			st := station
			ui.Federated = func(q search.Query) ([]search.Hit, error) {
				reply, err := st.Search(q)
				if err != nil {
					return nil, err
				}
				return reply.Hits, nil
			}
		}
		go func() {
			log.Printf("webdocd: virtual library UI on http://%s/", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, ui); err != nil {
				log.Fatalf("webdocd: http: %v", err)
			}
		}()
	}

	// Background checkpointer: compact the log whenever the tail grows
	// past -checkpoint-bytes or the -checkpoint-every timer fires, so
	// restart cost stays bounded no matter how long the station runs.
	stopCkpt := make(chan struct{})
	var ckptWG sync.WaitGroup
	if dir != "" && (*ckptEvery > 0 || *ckptBytes > 0) {
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			runCheckpointer(store, rel, *ckptEvery, *ckptBytes, stopCkpt, statsNode.Observer(), evSink)
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("webdocd: shutting down")
	// Orderly shutdown: stop serving, then take a final checkpoint —
	// relational snapshot, BLOB sidecar and rotated WAL land as one
	// generation, every file written temp-then-rename, so even a crash
	// during the shutdown itself leaves a loadable store. (The old
	// path re-created the BLOB sidecar in place with os.Create; dying
	// mid-write destroyed the only copy.)
	close(stopCkpt)
	ckptWG.Wait()
	if err := stop(); err != nil {
		log.Printf("webdocd: closing station: %v", err)
	}
	if dir != "" {
		if info, err := store.CheckpointNow(); err != nil {
			log.Printf("webdocd: shutdown checkpoint: %v", err)
		} else {
			log.Printf("webdocd: shutdown checkpoint generation %d (%d bytes)", info.Gen, info.Bytes)
		}
		if err := rel.CloseWAL(); err != nil {
			log.Printf("webdocd: closing WAL: %v", err)
		}
	}
}

// runCheckpointer polls the WAL tail once a second and checkpoints
// when either trigger fires: the tail crossing the byte budget, or the
// interval elapsing since the last checkpoint. Each installed
// checkpoint lands in the station's event journal (queryable over the
// Events RPC) and, when -log-events set a sink, on the process log.
func runCheckpointer(store *docdb.Store, rel *relstore.DB, every time.Duration, maxBytes int64, stop <-chan struct{}, o *obs.Observer, events obs.EventSink) {
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			due := every > 0 && time.Since(last) >= every
			full := maxBytes > 0 && rel.WALTailBytes() >= maxBytes
			if !due && !full {
				continue
			}
			info, err := store.CheckpointNow()
			last = time.Now()
			if err != nil {
				log.Printf("webdocd: background checkpoint: %v", err)
				continue
			}
			log.Printf("webdocd: checkpoint generation %d (%d bytes, wal seq %d)", info.Gen, info.Bytes, info.Seq)
			e := o.Emit(obs.NewEvent("checkpoint-install", "gen", info.Gen, "bytes", info.Bytes, "wal-seq", info.Seq))
			if events != nil {
				events(e.Line())
			}
		}
	}
}

// startDebugServer exposes the station's diagnostics over HTTP:
// net/http/pprof's profiles, expvar (the process defaults plus the
// unified station Stats snapshot under "station"), on an explicit mux
// so nothing else in the process leaks handlers onto it. A bare
// ":port" binds loopback — the profiler is an operator tool, not a
// public surface; exposing it wider takes an explicit interface
// address.
func startDebugServer(addr string, node *cluster.Node) {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	expvar.Publish("station", expvar.Func(func() any { return node.StatsNow() }))
	expvar.Publish("station_events", expvar.Func(func() any { return node.Observer().EventCounts() }))
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	go func() {
		log.Printf("webdocd: debug diagnostics on http://%s/debug/pprof/ and /debug/vars", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("webdocd: debug listener: %v", err)
		}
	}()
}

// prepareLegacyMigration upgrades a pre-checkpoint station: the
// single-file WAL at path (and its .blobs sidecar from the last
// orderly shutdown) is replayed into the engine before the durability
// directory attaches, then checkpointed and renamed aside by the
// caller. The rename of the legacy file is the migration's only
// commit point, which makes a crash at any instant safe:
//
//   - before the checkpoint lands, restarts find the legacy file and
//     no installed snapshot, discard whatever partial state a crashed
//     attempt left in the directory, and redo the whole migration
//     from the legacy file;
//   - after the checkpoint but before the rename, restarts find the
//     complete state installed and just finish the rename — the
//     legacy file is never half-applied and never double-applied.
func prepareLegacyMigration(rel *relstore.DB, blobs *blob.Store, path, dir string) bool {
	fi, err := os.Stat(path)
	if err != nil || fi.IsDir() {
		return false
	}
	if relstore.HasCheckpoint(dir) {
		// Either an interrupted migration that already checkpointed
		// the full legacy state, or a directory with genuinely newer
		// history: the installed generation is authoritative either
		// way, so retire the legacy files without replaying them.
		archiveLegacy(path)
		archiveLegacy(path + ".blobs")
		log.Printf("webdocd: %s already holds a checkpoint; archived legacy WAL %s", dir, path)
		return false
	}
	// No installed snapshot: anything in the directory is the partial
	// re-log of this same legacy file from a crashed attempt. Start
	// the migration over from the authoritative copy.
	if err := os.RemoveAll(dir); err != nil {
		log.Fatalf("webdocd: clearing partial migration in %s: %v", dir, err)
	}
	if f, err := os.Open(path + ".blobs"); err == nil {
		rerr := blobs.Restore(f)
		f.Close()
		if rerr != nil {
			log.Fatalf("webdocd: restoring legacy BLOB snapshot: %v", rerr)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("webdocd: opening legacy WAL: %v", err)
	}
	n, _, rerr := rel.ReplayWAL(f)
	f.Close()
	if rerr != nil {
		log.Fatalf("webdocd: replaying legacy WAL: %v", rerr)
	}
	log.Printf("webdocd: replayed legacy WAL %s (%d transactions)", path, n)
	return true
}

// archiveLegacy retires a legacy durability file by renaming it to
// NAME.migrated. A missing file is fine — not every station had a
// .blobs sidecar — but any other failure is fatal: the checkpoint in
// the data directory has already committed the migration, and leaving
// the legacy file in place would hand the next restart a data dir that
// looks half-migrated (and, under -wal, re-archive or fatally confuse
// it) without anyone having noticed.
func archiveLegacy(path string) {
	//lint:ignore atomicwrite archive rename within one directory of a file the installed checkpoint has already superseded; no durable state can be lost mid-rename
	err := os.Rename(path, path+".migrated")
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		log.Fatalf("webdocd: archiving legacy file %s: %v", path, err)
	}
}

// seed authors the synthetic startup course (pages > 0) unless the WAL
// replay already brought it back.
func seed(store *docdb.Store, lib *library.Library, pos, pages int) {
	if pages <= 0 {
		return
	}
	spec := workload.DefaultSpec(pos)
	spec.Pages = pages
	spec.MediaScaleDown = 4096
	if _, err := store.Script(spec.ScriptName); err == nil {
		// The course came back with the WAL replay; re-seeding
		// would collide with the restored rows.
		log.Printf("webdocd: %s already present, skipping seed", spec.ScriptName)
		if err := lib.Add(spec.ScriptName, fmt.Sprintf("MMU-%03d", pos), "instructor"); err != nil {
			log.Fatalf("webdocd: cataloging course: %v", err)
		}
		return
	}
	course, err := workload.BuildCourse(store, spec)
	if err != nil {
		log.Fatalf("webdocd: seeding course: %v", err)
	}
	if _, err := store.NewInstance(spec.URL, pos, true); err != nil {
		log.Fatalf("webdocd: recording instance: %v", err)
	}
	if err := lib.Add(spec.ScriptName, fmt.Sprintf("MMU-%03d", pos), "instructor"); err != nil {
		log.Fatalf("webdocd: cataloging course: %v", err)
	}
	log.Printf("webdocd: seeded %s (%d pages, %d media, %d bytes)",
		spec.ScriptName, course.PageCount, course.MediaCount, course.MediaBytes)
}
