package annotate

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func sampleDoc() *Document {
	return &Document{
		Author:  "Shih",
		PageURL: "http://mmu/intro/index.html",
		Primitives: []Primitive{
			{Kind: PrimLine, At: 2 * time.Second, Points: []Point{{0, 0}, {100, 50}}, Color: 0xFF0000, Width: 2},
			{Kind: PrimText, At: 5 * time.Second, Points: []Point{{10, 20}}, Text: "see figure 2", Color: 0x0000FF, Width: 1},
			{Kind: PrimRect, At: 1 * time.Second, Points: []Point{{5, 5}, {60, 40}}, Color: 0x00FF00, Width: 3},
			{Kind: PrimFreehand, At: 8 * time.Second, Points: []Point{{0, 0}, {1, 2}, {3, 4}}, Width: 1},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := sampleDoc()
	data := d.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", d, got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not an annotation")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrBadMagic) {
		t.Errorf("nil: err = %v", err)
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	data := sampleDoc().Encode()
	data[4] = 0xFF // clobber version
	if _, err := Decode(data); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeTruncatedFails(t *testing.T) {
	data := sampleDoc().Encode()
	for _, cut := range []int{5, 8, 12, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeHugeLengthRejected(t *testing.T) {
	// A corrupt primitive count must not cause a giant allocation.
	var buf bytes.Buffer
	buf.WriteString("MMUA")
	buf.Write([]byte{0, 1})                   // version
	buf.Write([]byte{0, 0, 0, 0})             // author len 0
	buf.Write([]byte{0, 0, 0, 0})             // url len 0
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // primitive count
	if _, err := Decode(buf.Bytes()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v", err)
	}
}

func TestPlaybackWindowAndOrder(t *testing.T) {
	d := sampleDoc()
	got := d.Playback(0, 6*time.Second)
	if len(got) != 3 {
		t.Fatalf("playback = %d prims", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Error("playback out of order")
		}
	}
	if got[0].Kind != PrimRect { // at 1s
		t.Errorf("first = %v", got[0].Kind)
	}
	// Window excludes the upper bound.
	got = d.Playback(5*time.Second, 8*time.Second)
	if len(got) != 1 || got[0].Kind != PrimText {
		t.Errorf("window = %+v", got)
	}
}

func TestDuration(t *testing.T) {
	if d := sampleDoc().Duration(); d != 8*time.Second {
		t.Errorf("duration = %v", d)
	}
	empty := &Document{}
	if empty.Duration() != 0 {
		t.Error("empty duration != 0")
	}
}

func TestMergePreservesAuthors(t *testing.T) {
	d1 := &Document{Author: "Shih", Primitives: []Primitive{
		{Kind: PrimLine, At: 3 * time.Second, Points: []Point{{0, 0}, {1, 1}}},
	}}
	d2 := &Document{Author: "Ma", Primitives: []Primitive{
		{Kind: PrimLine, At: 1 * time.Second, Points: []Point{{2, 2}, {3, 3}}},
		{Kind: PrimLine, At: 5 * time.Second, Points: []Point{{4, 4}, {5, 5}}},
	}}
	prims, authors := Merge(d1, d2)
	if len(prims) != 3 || len(authors) != 3 {
		t.Fatalf("merged = %d/%d", len(prims), len(authors))
	}
	if authors[0] != "Ma" || authors[1] != "Shih" || authors[2] != "Ma" {
		t.Errorf("authors = %v", authors)
	}
	if prims[0].At != time.Second {
		t.Errorf("order wrong: %v", prims[0].At)
	}
}

func TestBoundingBox(t *testing.T) {
	d := sampleDoc()
	min, max, ok := d.BoundingBox()
	if !ok {
		t.Fatal("no bbox")
	}
	if min.X != 0 || min.Y != 0 || max.X != 100 || max.Y != 50 {
		t.Errorf("bbox = %+v %+v", min, max)
	}
	empty := &Document{}
	if _, _, ok := empty.BoundingBox(); ok {
		t.Error("empty doc has bbox")
	}
}

func TestValidate(t *testing.T) {
	good := sampleDoc()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Document{
		{Primitives: []Primitive{{Kind: PrimLine, Points: []Point{{0, 0}}}}},
		{Primitives: []Primitive{{Kind: PrimText}}},
		{Primitives: []Primitive{{Kind: PrimFreehand, Points: []Point{{0, 0}}}}},
		{Primitives: []Primitive{{Kind: PrimKind(99), Points: []Point{{0, 0}, {1, 1}}}}},
		{Primitives: []Primitive{{Kind: PrimLine, At: -time.Second, Points: []Point{{0, 0}, {1, 1}}}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad doc %d validated", i)
		}
	}
}

// Property: encode/decode round-trips arbitrary (valid-shaped)
// documents.
func TestQuickEncodeDecode(t *testing.T) {
	f := func(author, url, text string, xs []int32, atRaw uint32, color uint32, width uint8) bool {
		points := make([]Point, 0, len(xs)+2)
		points = append(points, Point{0, 0}, Point{1, 1})
		for _, x := range xs {
			points = append(points, Point{X: x, Y: -x})
		}
		d := &Document{
			Author:  author,
			PageURL: url,
			Primitives: []Primitive{
				{Kind: PrimFreehand, At: time.Duration(atRaw), Points: points, Color: color, Width: width},
				{Kind: PrimText, At: time.Duration(atRaw) * 2, Points: []Point{{9, 9}}, Text: text},
			},
		}
		got, err := Decode(d.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(d, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrimKindString(t *testing.T) {
	names := map[PrimKind]string{
		PrimLine: "line", PrimText: "text", PrimRect: "rect",
		PrimEllipse: "ellipse", PrimFreehand: "freehand",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d = %s", k, k.String())
		}
	}
}
