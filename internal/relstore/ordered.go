package relstore

import (
	"fmt"
	"sort"
)

// orderedEntry is one (value, pk) pair of an ordered index.
type orderedEntry struct {
	val any
	pk  string
}

// orderedIndex keeps a column's values in sorted order so range
// predicates (<, <=, >, >=) and ORDER BY on the column run off the
// index instead of a full scan. Inserts and deletes are O(n) memmoves,
// the classic trade of a sorted array against the table sizes this
// engine serves.
type orderedIndex struct {
	column string
	keys   []orderedEntry // sorted by compareValues(val), ties by pk
}

func newOrderedIndex(column string) *orderedIndex {
	return &orderedIndex{column: column}
}

// search returns the first position whose entry is >= (val, pk).
func (ix *orderedIndex) search(val any, pk string) int {
	return sort.Search(len(ix.keys), func(i int) bool {
		c := compareValues(ix.keys[i].val, val)
		if c != 0 {
			return c > 0
		}
		return ix.keys[i].pk >= pk
	})
}

func (ix *orderedIndex) add(val any, pk string) {
	i := ix.search(val, pk)
	ix.keys = append(ix.keys, orderedEntry{})
	copy(ix.keys[i+1:], ix.keys[i:])
	ix.keys[i] = orderedEntry{val: val, pk: pk}
}

func (ix *orderedIndex) remove(val any, pk string) {
	i := ix.search(val, pk)
	if i < len(ix.keys) && compareValues(ix.keys[i].val, val) == 0 && ix.keys[i].pk == pk {
		ix.keys = append(ix.keys[:i], ix.keys[i+1:]...)
	}
}

// lowerBound returns the first position whose value is >= val (or > val
// when strict).
func (ix *orderedIndex) lowerBound(val any, strict bool) int {
	return sort.Search(len(ix.keys), func(i int) bool {
		c := compareValues(ix.keys[i].val, val)
		if strict {
			return c > 0
		}
		return c >= 0
	})
}

// rangePKs returns the primary keys satisfying one range operator, in
// value order. NULL values never satisfy a range predicate, matching
// Cond.matches.
func (ix *orderedIndex) rangePKs(op CmpOp, val any) []string {
	var lo, hi int
	switch op {
	case OpLt:
		lo, hi = 0, ix.lowerBound(val, false)
	case OpLe:
		lo, hi = 0, ix.lowerBound(val, true)
	case OpGt:
		lo, hi = ix.lowerBound(val, true), len(ix.keys)
	case OpGe:
		lo, hi = ix.lowerBound(val, false), len(ix.keys)
	case OpEq:
		lo, hi = ix.lowerBound(val, false), ix.lowerBound(val, true)
	default:
		return nil
	}
	out := make([]string, 0, hi-lo)
	for _, e := range ix.keys[lo:hi] {
		if e.val == nil {
			continue // NULLs sort first but never match ranges
		}
		out = append(out, e.pk)
	}
	return out
}

// CreateOrderedIndex adds an ordered index over one column, backfilling
// existing rows. Range conditions and equality conditions on the column
// are then served from the index.
func (db *DB) CreateOrderedIndex(tableName, column string) error {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	if _, ok := t.schema.column(column); !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoColumn, tableName, column)
	}
	if t.ordered == nil {
		t.ordered = make(map[string]*orderedIndex)
	}
	if _, ok := t.ordered[column]; ok {
		return nil
	}
	ix := newOrderedIndex(column)
	// Backfill in one sort rather than n insertions.
	ix.keys = make([]orderedEntry, 0, len(t.rows))
	for pk, row := range t.rows {
		ix.keys = append(ix.keys, orderedEntry{val: row[column], pk: pk})
	}
	sort.Slice(ix.keys, func(i, j int) bool {
		c := compareValues(ix.keys[i].val, ix.keys[j].val)
		if c != 0 {
			return c < 0
		}
		return ix.keys[i].pk < ix.keys[j].pk
	})
	t.ordered[column] = ix
	return nil
}

// orderedAdd/orderedRemove update every ordered index of the table.
// Caller holds the table's write lock (or metaMu exclusively).
func (t *table) orderedAdd(row Row, pk string) {
	for col, ix := range t.ordered {
		ix.add(row[col], pk)
	}
}

func (t *table) orderedRemove(row Row, pk string) {
	for col, ix := range t.ordered {
		ix.remove(row[col], pk)
	}
}
