package fabric

import (
	"sync"
	"testing"

	"repro/internal/cluster"
)

// TestStatsScrapeUnderFabricTraffic hammers the unified Stats RPC on
// the full 13-station m=3 fabric while broadcasts, resolves and a
// migration run — the load harness's scrape pattern, under the race
// detector. Every scrape must answer from every station, and the final
// snapshot must show the traffic.
func TestStatsScrapeUnderFabricTraffic(t *testing.T) {
	stations := newFabric(t, 13, 3, 2)
	spec := authorCourse(t, stations[0], 1)

	scrape := func() {
		for i, st := range stations {
			rs, err := cluster.DialStation(st.Addr())
			if err != nil {
				t.Errorf("dial station %d: %v", i+1, err)
				return
			}
			if _, err := rs.Stats(); err != nil {
				t.Errorf("stats from station %d: %v", i+1, err)
			}
			rs.Close()
		}
	}

	var wg sync.WaitGroup
	// Scrapers race the distribution traffic.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				scrape()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := stations[0].Broadcast(spec.URL, false); err != nil {
			t.Errorf("broadcast: %v", err)
			return
		}
		for _, st := range []*Station{stations[4], stations[9], stations[12]} {
			if _, err := st.Resolve(spec.URL); err != nil {
				t.Errorf("resolve: %v", err)
			}
		}
		if _, err := stations[0].EndLecture(spec.URL); err != nil {
			t.Errorf("migrate: %v", err)
		}
	}()
	wg.Wait()

	// After the dust settles the root's counters carry the fabric
	// traffic: joins, heartbeats, scrapes and the broadcast fan-out all
	// arrived over the same accounted socket.
	root := stations[0].Node().StatsNow()
	if root.Ops["Stats"] == 0 {
		t.Errorf("root served no Stats calls: %v", root.Ops)
	}
	if root.BytesIn == 0 || root.BytesOut == 0 {
		t.Errorf("root byte counters empty: %d in / %d out", root.BytesIn, root.BytesOut)
	}
	if !root.Indexed || root.IndexDocs == 0 {
		t.Errorf("root index stats empty: %+v", root)
	}
}
