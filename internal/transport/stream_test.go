package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// streamServer serves one method that streams n deterministic bytes
// and one that echoes over the plain path.
func streamServer(t *testing.T, payload []byte) (string, *Server) {
	t.Helper()
	srv := NewServer()
	srv.Handle("Stream", func(decode func(any) error) (any, error) {
		var req struct{}
		if err := decode(&req); err != nil {
			return nil, err
		}
		return bytes.NewReader(payload), nil
	})
	srv.Handle("Echo", func(decode func(any) error) (any, error) {
		var s string
		if err := decode(&s); err != nil {
			return nil, err
		}
		return s, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

func streamPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 31)
	}
	return p
}

func TestCallStreamMultiChunk(t *testing.T) {
	// Three full chunks plus a partial one.
	payload := streamPayload(3*StreamChunk + 1234)
	addr, _ := streamServer(t, payload)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got bytes.Buffer
	n, err := c.CallStream("Stream", struct{}{}, &got, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("streamed %d bytes, want %d", n, len(payload))
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("streamed bytes corrupted")
	}
	// The connection stays usable for ordinary calls afterwards.
	var echo string
	if err := c.Call("Echo", "still alive", &echo); err != nil || echo != "still alive" {
		t.Fatalf("call after stream: %q, %v", echo, err)
	}
}

func TestCallStreamEmptyPayload(t *testing.T) {
	addr, _ := streamServer(t, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got bytes.Buffer
	n, err := c.CallStream("Stream", struct{}{}, &got, time.Second)
	if err != nil || n != 0 {
		t.Fatalf("empty stream = %d bytes, %v", n, err)
	}
}

// failingReader yields some bytes and then an error, modelling a
// checkpoint file that goes bad mid-transfer.
type failingReader struct {
	left int
}

func (r *failingReader) Read(p []byte) (int, error) {
	if r.left <= 0 {
		return 0, errors.New("disk ate the checkpoint")
	}
	n := min(len(p), r.left)
	r.left -= n
	return n, nil
}

func TestCallStreamMidStreamError(t *testing.T) {
	srv := NewServer()
	srv.Handle("Bad", func(decode func(any) error) (any, error) {
		var req struct{}
		if err := decode(&req); err != nil {
			return nil, err
		}
		return &failingReader{left: StreamChunk / 2}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got bytes.Buffer
	n, err := c.CallStream("Bad", struct{}{}, &got, 5*time.Second)
	if err == nil || err.Error() != "disk ate the checkpoint" {
		t.Fatalf("err = %v, want the server's read error", err)
	}
	if n != int64(StreamChunk/2) {
		t.Errorf("partial bytes before the error = %d, want %d", n, StreamChunk/2)
	}
	// The error frame closed the stream cleanly: the connection is
	// still good.
	var echo bytes.Buffer
	if _, err := c.CallStream("Bad", struct{}{}, &echo, 5*time.Second); err == nil {
		t.Fatal("second stream unexpectedly succeeded")
	}
}

func TestPoolCallStream(t *testing.T) {
	payload := streamPayload(2*StreamChunk + 77)
	addr, _ := streamServer(t, payload)
	p := NewPool(addr, 2, 5*time.Second)
	defer p.Close()
	for i := 0; i < 3; i++ { // exercises idle reuse across streams
		var got bytes.Buffer
		n, err := p.CallStream("Stream", struct{}{}, &got)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if n != int64(len(payload)) || !bytes.Equal(got.Bytes(), payload) {
			t.Fatalf("round %d: %d bytes, corrupted=%v", i, n, !bytes.Equal(got.Bytes(), payload))
		}
	}
}

func TestPoolCallStreamRetriesStaleIdle(t *testing.T) {
	payload := streamPayload(StreamChunk + 9)
	addr, srv := streamServer(t, payload)
	p := NewPool(addr, 1, 5*time.Second)
	defer p.Close()
	var first bytes.Buffer
	if _, err := p.CallStream("Stream", struct{}{}, &first); err != nil {
		t.Fatal(err)
	}
	// The server restarts on the same address: the parked connection
	// is stale, and the pool must retry the stream on a fresh dial.
	srv.Close()
	srv2 := NewServer()
	srv2.Handle("Stream", func(decode func(any) error) (any, error) {
		var req struct{}
		if err := decode(&req); err != nil {
			return nil, err
		}
		return bytes.NewReader(payload), nil
	})
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	var second bytes.Buffer
	n, err := p.CallStream("Stream", struct{}{}, &second)
	if err != nil {
		t.Fatalf("stream across server restart: %v", err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("streamed %d bytes, want %d", n, len(payload))
	}
}

// chunkyReader yields many small Reads so the server emits one frame
// per kilobyte — enough frames to overfill a stream's client-side
// buffer.
type chunkyReader struct{ left int }

func (r *chunkyReader) Read(p []byte) (int, error) {
	if r.left == 0 {
		return 0, io.EOF
	}
	r.left--
	n := 1024
	if n > len(p) {
		n = len(p)
	}
	for i := 0; i < n; i++ {
		p[i] = byte(r.left)
	}
	return n, nil
}

type failAfterWriter struct{ writes int }

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, errors.New("consumer gave up")
	}
	return len(p), nil
}

// TestAbandonedStreamDoesNotWedgeClient: a consumer that dies
// mid-stream must not strand the read loop on the full chunk buffer —
// the remaining frames drain in the background and other calls on the
// same connection keep working.
func TestAbandonedStreamDoesNotWedgeClient(t *testing.T) {
	srv := NewServer()
	srv.Handle("Chunks", func(decode func(any) error) (any, error) {
		var req struct{}
		if err := decode(&req); err != nil {
			return nil, err
		}
		return &chunkyReader{left: 64}, nil // 64 one-KiB frames, buffer holds 16
	})
	srv.Handle("Echo", func(decode func(any) error) (any, error) {
		var s string
		if err := decode(&s); err != nil {
			return nil, err
		}
		return s, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.CallStream("Chunks", struct{}{}, &failAfterWriter{}, 5*time.Second); err == nil {
		t.Fatal("stream with a failing consumer succeeded")
	}
	var echo string
	if err := c.CallTimeout("Echo", "alive", &echo, 5*time.Second); err != nil || echo != "alive" {
		t.Fatalf("call after abandoned stream: %q, %v (client wedged?)", echo, err)
	}
}

func TestCallStreamTimeoutOnSilence(t *testing.T) {
	srv := NewServer()
	block := make(chan struct{})
	srv.Handle("Hang", func(decode func(any) error) (any, error) {
		var req struct{}
		if err := decode(&req); err != nil {
			return nil, err
		}
		<-block
		return bytes.NewReader(nil), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); srv.Close() }()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sink bytes.Buffer
	if _, err := c.CallStream("Hang", struct{}{}, &sink, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// BenchmarkCallStream measures the chunked path against a large
// payload, the shape of a checkpoint crossing the wire.
func BenchmarkCallStream(b *testing.B) {
	payload := streamPayload(8 * StreamChunk)
	srv := NewServer()
	srv.Handle("Stream", func(decode func(any) error) (any, error) {
		var req struct{}
		if err := decode(&req); err != nil {
			return nil, err
		}
		return bytes.NewReader(payload), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink countWriter
		if _, err := c.CallStream("Stream", struct{}{}, &sink, 30*time.Second); err != nil {
			b.Fatal(err)
		}
		if int(sink) != len(payload) {
			b.Fatalf("streamed %d bytes, want %d", int(sink), len(payload))
		}
	}
}

type countWriter int

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}
