package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/docdb"
	"repro/internal/media"
	"repro/internal/mtree"
	"repro/internal/netsim"
	"repro/internal/relstore"
	"repro/internal/workload"
)

const (
	mbps10    = 1.25e6 // 10 Mb/s in bytes/second
	linkDelay = 5 * time.Millisecond
)

// treeBroadcastTime simulates a store-and-forward broadcast of one
// bundle over N stations with degree m and returns the completion time
// of the slowest station.
func treeBroadcastTime(total, m int, bundle int64) (time.Duration, error) {
	sim := netsim.New(netsim.Sequential)
	ids := sim.AddNodes(total, mbps10, linkDelay)
	var last time.Duration
	var failure error
	var forward func(pos int)
	forward = func(pos int) {
		kids, err := mtree.Children(pos, m, total)
		if err != nil {
			failure = err
			return
		}
		for _, kid := range kids {
			kid := kid
			if err := sim.Transfer(ids[pos-1], ids[kid-1], bundle, func(at time.Duration) {
				if at > last {
					last = at
				}
				forward(kid)
			}); err != nil {
				failure = err
				return
			}
		}
	}
	forward(1)
	sim.Run()
	return last, failure
}

// rootUnicastFairShare simulates the root opening one concurrent flow
// per station over its fair-shared uplink (the "just let the server
// send to everyone" baseline).
func rootUnicastFairShare(total int, bundle int64) (time.Duration, error) {
	sim := netsim.New(netsim.FairShare)
	ids := sim.AddNodes(total, mbps10, linkDelay)
	var last time.Duration
	for k := 2; k <= total; k++ {
		if err := sim.Transfer(ids[0], ids[k-1], bundle, func(at time.Duration) {
			if at > last {
				last = at
			}
		}); err != nil {
			return 0, err
		}
	}
	sim.Run()
	return last, nil
}

// E1BroadcastTree regenerates the headline distribution claim: the
// m-ary pre-broadcast beats both the degenerate chain (m = 1) and the
// root-serves-everyone star, with the optimum at a small interior
// degree.
func E1BroadcastTree(scale Scale) (*Table, error) {
	sizes := []int{15, 63}
	bundle := int64(8 << 20)
	if scale == Full {
		sizes = []int{15, 63, 255}
		bundle = 48 << 20
	}
	t := &Table{
		ID:     "E1",
		Title:  "pre-broadcast completion time vs tree degree m (10 Mb/s uplinks)",
		Header: []string{"N", "m", "completion (s)", "model (s)"},
		Notes: []string{
			"m=1 is the degenerate chain; m=N-1 is root-unicast (sequential) plus a fair-share concurrent baseline",
			fmt.Sprintf("bundle = %s MiB store-and-forward", mb(bundle)),
		},
	}
	lm := mtree.LinkModel{Latency: linkDelay, BytesPerSecond: mbps10}
	for _, n := range sizes {
		degrees := []int{1, 2, 3, 4, 8, n - 1}
		for _, m := range degrees {
			got, err := treeBroadcastTime(n, m, bundle)
			if err != nil {
				return nil, err
			}
			model, err := mtree.BroadcastTime(n, m, bundle, lm)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), fmt.Sprint(m), seconds(got), seconds(model),
			})
		}
		fair, err := rootUnicastFairShare(n, bundle)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), "N-1 fair-share", seconds(fair), "-"})
	}
	return t, nil
}

// lectureSpec builds the experiment course: a 40-page lecture with
// realistic (scaled) media.
func lectureSpec(scale Scale, n int) workload.CourseSpec {
	spec := workload.DefaultSpec(n)
	if scale == Small {
		spec.Pages = 10
		spec.ExtraLinks = 5
		spec.MediaScaleDown = 16384
	} else {
		spec.MediaScaleDown = 64 // keep full runs in memory but realistic in shape
	}
	return spec
}

// E2Preload contrasts pre-broadcast lecture playback with on-demand
// remote playback: the real-time demonstration claim of section 4.
func E2Preload(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "lecture playback: pre-broadcast vs on-demand remote fetch",
		Header: []string{"mode", "pages", "stalled pages", "stall time (s)", "fetched (MiB)"},
		Notes:  []string{"student at station 5 of 7, m=2, 10 Mb/s; playback needs each page's media before showing it"},
	}
	run := func(preload bool) error {
		c, err := cluster.New(cluster.Config{
			Stations: 7, M: 2, UplinkBps: mbps10, Latency: linkDelay,
			Watermark: -1, Mode: netsim.Sequential,
		})
		if err != nil {
			return err
		}
		spec := lectureSpec(scale, 1)
		if _, _, err := c.AuthorCourse(spec); err != nil {
			return err
		}
		if err := c.BroadcastReferences(spec.URL); err != nil {
			return err
		}
		mode := "on-demand"
		if preload {
			mode = "pre-broadcast"
			if _, _, err := c.PreBroadcast(spec.URL); err != nil {
				return err
			}
		}
		rep, err := c.Playback(5, spec.URL, 2*time.Second)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			mode, fmt.Sprint(rep.Pages), fmt.Sprint(rep.Stalls),
			seconds(rep.StallTime), mb(rep.FetchBytes),
		})
		return nil
	}
	if err := run(true); err != nil {
		return nil, err
	}
	if err := run(false); err != nil {
		return nil, err
	}
	return t, nil
}

// E3BlobSharing measures the disk the BLOB layer saves by sharing
// resources across documents on one station.
func E3BlobSharing(scale Scale) (*Table, error) {
	docs, pool := 40, 12
	if scale == Full {
		docs, pool = 200, 60
	}
	t := &Table{
		ID:     "E3",
		Title:  "BLOB sharing within a station: shared store vs per-document copies",
		Header: []string{"documents", "media pool", "physical (MiB)", "duplicated (MiB)", "sharing factor"},
		Notes:  []string{"each document references 5 Zipf-chosen resources from the pool"},
	}
	store, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		return nil, err
	}
	store.Now = func() time.Time { return time.Date(1999, 4, 21, 0, 0, 0, 0, time.UTC) }
	if err := store.CreateDatabase(docdb.Database{Name: "mmu"}); err != nil {
		return nil, err
	}
	// Build the shared media pool once.
	gen := media.NewGenerator(42)
	if scale == Small {
		gen.ScaleDown = 16384
	} else {
		gen.ScaleDown = 64
	}
	type poolItem struct {
		res media.Resource
	}
	items := make([]poolItem, pool)
	for i := range items {
		kind := blob.KindImage
		switch i % 5 {
		case 1:
			kind = blob.KindAudio
		case 2:
			kind = blob.KindVideo
		case 3:
			kind = blob.KindAnimation
		case 4:
			kind = blob.KindMIDI
		}
		items[i] = poolItem{res: gen.Generate(kind)}
	}
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(pool-1))
	for d := 0; d < docs; d++ {
		script := fmt.Sprintf("doc-%03d", d)
		if err := store.CreateScript(docdb.Script{Name: script, DBName: "mmu"}); err != nil {
			return nil, err
		}
		url := fmt.Sprintf("http://mmu/%s", script)
		if err := store.AddImplementation(docdb.Implementation{StartingURL: url, ScriptName: script}); err != nil {
			return nil, err
		}
		for r := 0; r < 5; r++ {
			item := items[int(zipf.Uint64())]
			if _, err := store.AttachImplMedia(url, item.res.Name, item.res.Kind, item.res.Data); err != nil {
				return nil, err
			}
		}
	}
	st := store.Blobs().Stats()
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(docs), fmt.Sprint(pool), mb(st.PhysicalBytes), mb(st.LogicalBytes),
		fmt.Sprintf("%.1fx", st.SharingFactor()),
	})
	return t, nil
}

// E4Watermark sweeps the watermark frequency and measures how repeated
// student retrievals amortize once replicas materialize.
func E4Watermark(scale Scale) (*Table, error) {
	accesses := 60
	stations := 15
	if scale == Full {
		accesses = 200
	}
	t := &Table{
		ID:     "E4",
		Title:  "watermark-frequency replication under repeated access",
		Header: []string{"watermark", "accesses", "remote fetches", "replicas", "avg latency (s)", "wire (MiB)", "student disk (MiB)"},
		Notes:  []string{fmt.Sprintf("%d stations, m=2; Zipf station popularity; watermark<0 never replicates", stations)},
	}
	for _, wm := range []int{-1, 0, 1, 3} {
		c, err := cluster.New(cluster.Config{
			Stations: stations, M: 2, UplinkBps: mbps10, Latency: linkDelay,
			Watermark: wm, Mode: netsim.Sequential,
		})
		if err != nil {
			return nil, err
		}
		spec := lectureSpec(scale, 2)
		if _, _, err := c.AuthorCourse(spec); err != nil {
			return nil, err
		}
		if err := c.BroadcastReferences(spec.URL); err != nil {
			return nil, err
		}
		wireBefore := c.WireBytes()
		rng := rand.New(rand.NewSource(11))
		zipf := rand.NewZipf(rng, 1.3, 1, uint64(stations-2))
		var total time.Duration
		remote, replicas := 0, 0
		for i := 0; i < accesses; i++ {
			pos := 2 + int(zipf.Uint64()) // stations 2..N, skewed
			res, err := c.FetchOnDemand(pos, spec.URL)
			if err != nil {
				return nil, err
			}
			total += res.Latency
			if !res.Local {
				remote++
			}
			if res.Replicated {
				replicas++
			}
		}
		var studentDisk int64
		for _, b := range c.DiskUsage()[1:] {
			studentDisk += b
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(wm), fmt.Sprint(accesses), fmt.Sprint(remote), fmt.Sprint(replicas),
			seconds(total / time.Duration(accesses)), mb(c.WireBytes() - wireBefore), mb(studentDisk),
		})
	}
	return t, nil
}

// E5Migration shows buffer-space behaviour across consecutive lectures:
// instances materialize for the lecture and migrate back to references
// afterwards.
func E5Migration(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "instance-to-reference migration across lectures (buffer space)",
		Header: []string{"lecture", "peak student disk (MiB)", "after migration (MiB)", "freed (MiB)"},
		Notes:  []string{"8 stations, m=2; every lecture is pre-broadcast, played, then ended"},
	}
	c, err := cluster.New(cluster.Config{
		Stations: 8, M: 2, UplinkBps: mbps10, Latency: linkDelay,
		Watermark: 0, Mode: netsim.Sequential,
	})
	if err != nil {
		return nil, err
	}
	lectures := 3
	for l := 1; l <= lectures; l++ {
		spec := lectureSpec(scale, 10+l)
		if _, _, err := c.AuthorCourse(spec); err != nil {
			return nil, err
		}
		if err := c.BroadcastReferences(spec.URL); err != nil {
			return nil, err
		}
		if _, _, err := c.PreBroadcast(spec.URL); err != nil {
			return nil, err
		}
		var peak int64
		for _, b := range c.DiskUsage()[1:] {
			peak += b
		}
		freed, err := c.EndLecture(spec.URL)
		if err != nil {
			return nil, err
		}
		var after int64
		for _, b := range c.DiskUsage()[1:] {
			after += b
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(l), mb(peak), mb(after), mb(freed),
		})
	}
	return t, nil
}

// E11Pipelining is the ablation of the store-and-forward design choice:
// the paper duplicates whole document instances hop by hop, so a
// station forwards only after holding the full bundle. Cutting the
// bundle into relay chunks removes the depth penalty. The table sweeps
// chunk sizes on a deep binary tree.
func E11Pipelining(scale Scale) (*Table, error) {
	stations := 31
	if scale == Full {
		stations = 63
	}
	t := &Table{
		ID:     "E11",
		Title:  "ablation: store-and-forward vs chunked relay (m=2, deep tree)",
		Header: []string{"strategy", "N", "slowest station (s)", "speedup"},
		Notes:  []string{"store-and-forward is the paper's instance-level duplication; chunked relays blocks as they arrive"},
	}
	build := func() (*cluster.Cluster, workload.CourseSpec, error) {
		c, err := cluster.New(cluster.Config{
			Stations: stations, M: 2, UplinkBps: mbps10, Latency: linkDelay,
			Watermark: 0, Mode: netsim.Sequential,
		})
		if err != nil {
			return nil, workload.CourseSpec{}, err
		}
		spec := lectureSpec(scale, 30)
		// Pipelining only shows once chunk transfer time dominates the
		// per-transfer latency, so keep the bundle around a megabyte
		// even at test scale.
		if scale == Small {
			spec.MediaScaleDown = 1024
		}
		if _, _, err := c.AuthorCourse(spec); err != nil {
			return nil, workload.CourseSpec{}, err
		}
		if err := c.BroadcastReferences(spec.URL); err != nil {
			return nil, workload.CourseSpec{}, err
		}
		return c, spec, nil
	}
	slowest := func(times []time.Duration) time.Duration {
		var max time.Duration
		for _, tt := range times {
			if tt > max {
				max = tt
			}
		}
		return max
	}

	c, spec, err := build()
	if err != nil {
		return nil, err
	}
	times, size, err := c.PreBroadcast(spec.URL)
	if err != nil {
		return nil, err
	}
	base := slowest(times)
	t.Rows = append(t.Rows, []string{"store-and-forward", fmt.Sprint(stations), seconds(base), "1.0x"})

	// Chunk sizes proportional to the bundle, floored so the
	// per-transfer latency cannot dominate a chunk.
	for _, denom := range []int64{4, 16, 64} {
		chunk := size / denom
		if chunk < 4096 {
			chunk = 4096
		}
		c, spec, err := build()
		if err != nil {
			return nil, err
		}
		times, _, err := c.PreBroadcastChunked(spec.URL, chunk)
		if err != nil {
			return nil, err
		}
		got := slowest(times)
		speedup := float64(base) / float64(got)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("chunked size/%d (%d KiB)", denom, chunk>>10), fmt.Sprint(stations),
			seconds(got), fmt.Sprintf("%.1fx", speedup),
		})
	}
	return t, nil
}

// E10AdaptiveM regenerates the adaptive-degree policy: the chosen m per
// station count and per-media bundle size under several bandwidths,
// under both uplink models. The sequential model's optimum depends only
// on N; the concurrent fan-out model trades tree depth (latency) against
// per-level bandwidth division, so the degree genuinely adapts to the
// media type, as section 4 claims.
func E10AdaptiveM(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "adaptive tree degree vs bundle size and bandwidth (N = 63)",
		Header: []string{"payload", "size (MiB)", "bandwidth", "m (serial)", "time (s)", "m (fan-out)", "time (s)"},
		Notes:  []string{"serial: parent serves children one at a time; fan-out: children concurrently over a split uplink"},
	}
	payloads := []struct {
		name string
		size int64
	}{
		{"midi score", 30 << 10},
		{"still image", 120 << 10},
		{"audio narration", 1 << 20},
		{"video clip", 8 << 20},
		{"full lecture", 48 << 20},
	}
	bandwidths := []struct {
		name string
		bps  float64
	}{
		{"1 Mb/s", 1.25e5},
		{"10 Mb/s", 1.25e6},
		{"100 Mb/s", 1.25e7},
	}
	for _, p := range payloads {
		for _, bw := range bandwidths {
			lm := mtree.LinkModel{Latency: linkDelay, BytesPerSecond: bw.bps}
			mSerial, tSerial, err := mtree.ChooseM(63, p.size, lm, 16)
			if err != nil {
				return nil, err
			}
			mFan, tFan, err := mtree.ChooseMFanout(63, p.size, lm, 16)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				p.name, mb(p.size), bw.name,
				fmt.Sprint(mSerial), seconds(tSerial),
				fmt.Sprint(mFan), seconds(tFan),
			})
		}
	}
	return t, nil
}
