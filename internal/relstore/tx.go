package relstore

import "fmt"

// undoOp reverses one mutation when a transaction rolls back.
type undoOp struct {
	table string
	pk    string
	// before == nil means the op inserted a new row (undo = delete);
	// inserted == false && before != nil means update (undo = restore);
	// deleted rows carry before != nil with inserted == false as well,
	// distinguished by present == false.
	before  Row
	present bool // row existed before the mutation
}

// walRec is one redo record for the write-ahead log.
type walRec struct {
	Op    string  `json:"op"` // insert | update | delete | create | drop
	Table string  `json:"table"`
	Row   Row     `json:"row,omitempty"`
	PK    any     `json:"pk,omitempty"`
	DDL   *Schema `json:"ddl,omitempty"`
}

// Tx is a transaction over a set of tables. The engine uses per-table
// two-phase locking: the transaction holds exclusive locks on the
// tables it writes and shared locks on their foreign-key neighbours
// from first touch (or from Begin, when declared) until Commit or
// Rollback. Transactions over disjoint tables run in parallel, and
// queries of unrelated tables are never blocked. Rollback restores the
// exact pre-transaction state.
//
// A transaction belongs to one goroutine. While it is open that
// goroutine must read through the transaction's own Get/Select (which
// see its uncommitted writes) rather than the DB-level methods, which
// would wait for the transaction's locks.
type Tx struct {
	db    *DB
	modes map[string]lockMode // table name -> strongest held mode
	held  []heldLock          // acquisition order, for release
	top   string              // greatest table name locked so far
	undo  []undoOp
	redo  []walRec
	done  bool
}

// Begin opens a transaction. Declaring the tables the transaction will
// write acquires every lock up front in sorted order, which is required
// when the transaction writes tables in an order that is not itself
// ascending. With no declared tables, locks are acquired lazily at
// first touch; that succeeds whenever each newly touched table sorts
// after all tables already locked (single-table transactions always
// do), and fails with ErrLockOrder otherwise.
func (db *DB) Begin(tables ...string) (*Tx, error) {
	db.metaMu.RLock()
	tx := &Tx{db: db, modes: make(map[string]lockMode)}
	if len(tables) == 0 {
		return tx, nil
	}
	needs := make(map[string]lockMode)
	for _, name := range tables {
		if _, ok := db.tables[name]; !ok {
			db.metaMu.RUnlock()
			return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
		}
		for n, m := range db.writeNeeds(name) {
			if m > needs[n] {
				needs[n] = m
			}
		}
	}
	if err := tx.acquire(needs); err != nil {
		tx.release()
		return nil, err
	}
	return tx, nil
}

// Commit makes the transaction's effects durable (appending them to the
// WAL in one record when a log is attached) and releases every lock.
func (tx *Tx) Commit() error {
	return tx.CommitThen(nil)
}

// CommitThen is Commit with a post-commit hook that runs BEFORE the
// transaction's locks release: fn observes the committed state while
// nothing — not another writer, not a checkpoint's write-quiescent
// window — can slip between the commit and the hook. This is the
// ordering derived caches (the document store's content index) need:
// a checkpoint that captures the cache inside its quiescent window can
// never observe a committed row whose hook has not run yet. fn must
// not touch the database through this or any other transaction.
func (tx *Tx) CommitThen(fn func()) error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	var err error
	if tx.db.wal != nil && len(tx.redo) > 0 {
		err = tx.db.wal.append(tx.redo)
	}
	// A failed WAL append keeps the in-memory mutations (the existing
	// Commit contract), so the hook still reflects the live state.
	if fn != nil {
		fn()
	}
	tx.release()
	return err
}

// Rollback undoes every mutation made through the transaction and
// releases every lock.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	// Undo in reverse order. Every table in the undo log is
	// write-locked by this transaction.
	for i := len(tx.undo) - 1; i >= 0; i-- {
		op := tx.undo[i]
		t := tx.db.tables[op.table]
		if t == nil {
			continue
		}
		cur, exists := t.rows[op.pk]
		if exists {
			delete(t.rows, op.pk)
			for _, ix := range t.indexes {
				ix.remove(cur[ix.column], op.pk)
			}
			t.orderedRemove(cur, op.pk)
		}
		if op.present {
			t.rows[op.pk] = op.before
			for _, ix := range t.indexes {
				ix.add(op.before[ix.column], op.pk)
			}
			t.orderedAdd(op.before, op.pk)
		}
		t.dirty = true
	}
	tx.release()
	return nil
}

// Insert adds a row inside the transaction.
func (tx *Tx) Insert(tableName string, r Row) error {
	if tx.done {
		return ErrTxDone
	}
	t, ok := tx.db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	if err := tx.acquireWrite(tableName); err != nil {
		return err
	}
	row, err := t.normalizeRow(r, true)
	if err != nil {
		return err
	}
	pk, err := tx.db.insertLocked(t, row)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoOp{table: tableName, pk: pk})
	tx.redo = append(tx.redo, walRec{Op: "insert", Table: tableName, Row: row})
	return nil
}

// Update merges column changes into an existing row inside the
// transaction. Changing the primary-key column is rejected.
func (tx *Tx) Update(tableName string, pkVal any, changes Row) error {
	if tx.done {
		return ErrTxDone
	}
	t, ok := tx.db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	if err := tx.acquireWrite(tableName); err != nil {
		return err
	}
	keyCol, _ := t.schema.column(t.schema.Key)
	cv, err := coerce(keyCol.Type, pkVal)
	if err != nil {
		return err
	}
	pk := encodeKey(cv)
	old, ok := t.rows[pk]
	if !ok {
		return fmt.Errorf("%w: %s[%v]", ErrNotFound, tableName, pkVal)
	}
	norm, err := t.normalizeRow(changes, false)
	if err != nil {
		return err
	}
	if nv, touched := norm[t.schema.Key]; touched && compareValues(nv, old[t.schema.Key]) != 0 {
		return fmt.Errorf("%w: %s[%v]", ErrKeyChange, tableName, pkVal)
	}
	merged := old.Clone()
	for k, v := range norm {
		merged[k] = v
	}
	// Re-validate NOT NULL on the merged row and re-check foreign keys.
	for _, col := range t.schema.Columns {
		if col.NotNull && merged[col.Name] == nil {
			return fmt.Errorf("%w: %s.%s", ErrNull, tableName, col.Name)
		}
	}
	if err := tx.db.checkFKs(t, merged); err != nil {
		return err
	}
	for _, ix := range t.indexes {
		ix.remove(old[ix.column], pk)
		ix.add(merged[ix.column], pk)
	}
	t.orderedRemove(old, pk)
	t.orderedAdd(merged, pk)
	t.rows[pk] = merged
	t.dirty = true
	tx.undo = append(tx.undo, undoOp{table: tableName, pk: pk, before: old, present: true})
	tx.redo = append(tx.redo, walRec{Op: "update", Table: tableName, PK: cv, Row: norm})
	return nil
}

// Delete removes a row inside the transaction, enforcing referential
// integrity (restrict semantics).
func (tx *Tx) Delete(tableName string, pkVal any) error {
	if tx.done {
		return ErrTxDone
	}
	t, ok := tx.db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	if err := tx.acquireWrite(tableName); err != nil {
		return err
	}
	keyCol, _ := t.schema.column(t.schema.Key)
	cv, err := coerce(keyCol.Type, pkVal)
	if err != nil {
		return err
	}
	pk := encodeKey(cv)
	old, err := tx.db.deleteLocked(t, pk)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoOp{table: tableName, pk: pk, before: old, present: true})
	tx.redo = append(tx.redo, walRec{Op: "delete", Table: tableName, PK: cv})
	return nil
}

// Get fetches a row by primary key from inside the transaction, seeing
// the transaction's own uncommitted writes. The table is read-locked
// lazily if the transaction does not already hold it.
func (tx *Tx) Get(tableName string, pkVal any) (Row, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	t, ok := tx.db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	if err := tx.acquire(map[string]lockMode{tableName: lockRead}); err != nil {
		return nil, err
	}
	return t.getLocked(pkVal)
}

// Select runs a query inside the transaction, seeing the transaction's
// own uncommitted writes. The table is read-locked lazily if the
// transaction does not already hold it.
func (tx *Tx) Select(q Query) ([]Row, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	t, ok := tx.db.tables[q.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, q.Table)
	}
	if err := tx.acquire(map[string]lockMode{q.Table: lockRead}); err != nil {
		return nil, err
	}
	return t.selectLocked(q)
}
