package relstore

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"encoding/json"
)

// Test-only bridges for building pre-overhaul (gob + JSON) durability
// directories from live state. Compiled into test binaries only; the
// external relstore_test package uses them for the full-stack
// legacy-recovery test.

// EncodeLegacyCkptForTest captures db and renders it as the gob
// checkpoint image the pre-binary writer produced.
func EncodeLegacyCkptForTest(db *DB, gen, seq uint64) ([]byte, error) {
	db.metaMu.RLock()
	names := db.lockAllTablesShared()
	snap := db.captureLocked()
	db.unlockAllTablesShared(names)
	db.metaMu.RUnlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ckptImage{Gen: gen, Seq: seq, Snap: snap}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TranscodeWALToLegacyJSONForTest rewrites a WAL (binary, JSON or
// mixed) as the pure JSON-line format the pre-binary writer produced,
// $b/$t value tagging included.
func TranscodeWALToLegacyJSONForTest(raw []byte) ([]byte, error) {
	br := bufio.NewReader(bytes.NewReader(raw))
	var out []byte
	for {
		line, done, err := readWalLine(br)
		if done {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		recs := make([]walRec, len(line.Recs))
		for i, rec := range line.Recs {
			rec.Row = walEncodeRow(rec.Row)
			rec.PK = walEncodeValue(rec.PK)
			recs[i] = rec
		}
		line.Recs = recs
		b, err := json.Marshal(line)
		if err != nil {
			return nil, err
		}
		out = append(append(out, b...), '\n')
	}
}
