package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"testing"

	"repro/internal/wire"
)

// legacyFrameBytes encodes an envelope the way the pre-overhaul
// transport did: length prefix plus a fresh gob stream per frame.
func legacyFrameBytes(t testing.TB, env *envelope) []byte {
	t.Helper()
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(env); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	var head [4]byte
	binary.BigEndian.PutUint32(head[:], uint32(body.Len()))
	buf.Write(head[:])
	buf.Write(body.Bytes())
	return buf.Bytes()
}

func sameEnvelope(a, b *envelope) bool {
	return a.ID == b.ID && a.Method == b.Method && a.IsResp == b.IsResp &&
		a.More == b.More && a.Err == b.Err && bytes.Equal(a.Body, b.Body) &&
		a.TraceID == b.TraceID && a.Parent == b.Parent
}

func TestBinaryFrameRoundTrip(t *testing.T) {
	cases := []*envelope{
		{},
		{ID: 1, Method: "Ping"},
		{ID: 1 << 62, Method: "Fabric.Push", Body: bytes.Repeat([]byte{0xAB}, 512)},
		{ID: 9, IsResp: true, Err: "no such method"},
		{ID: 3, Method: "Fabric.Search", TraceID: 0xDEADBEEF, Parent: 42},
		{ID: 4, IsResp: true, More: true, Body: []byte("chunk")},
		{ID: 5, Method: "m", Body: []byte{}, TraceID: 1},
	}
	for i, in := range cases {
		var buf bytes.Buffer
		if err := writeFrame(&buf, in); err != nil {
			t.Fatalf("case %d: writeFrame: %v", i, err)
		}
		out, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("case %d: readFrame: %v", i, err)
		}
		if !sameEnvelope(in, out) {
			t.Fatalf("case %d: round trip mismatch:\n in: %+v\nout: %+v", i, in, out)
		}
	}
}

// TestLegacyGobFrameAccepted pins the read-side fallback: a frame
// written by the pre-overhaul gob codec must decode bit-identically,
// trace fields included, so mixed-version fabrics interoperate during
// a rolling upgrade.
func TestLegacyGobFrameAccepted(t *testing.T) {
	in := &envelope{
		ID: 77, Method: "Fabric.Resolve", Body: []byte("bundle bytes"),
		TraceID: 123456, Parent: 7,
	}
	out, err := readFrame(bytes.NewReader(legacyFrameBytes(t, in)))
	if err != nil {
		t.Fatalf("legacy frame rejected: %v", err)
	}
	if !sameEnvelope(in, out) {
		t.Fatalf("legacy decode mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestFrameChecksumDetectsCorruption(t *testing.T) {
	in := &envelope{ID: 5, Method: "SQL", Body: bytes.Repeat([]byte{0x11}, 64)}
	var buf bytes.Buffer
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Flip one body byte; the CRC trailer must catch it.
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0x01
	if _, err := readFrame(bytes.NewReader(raw)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestFrameBadVersionIsBadHeader(t *testing.T) {
	in := &envelope{ID: 5, Method: "m"}
	var buf bytes.Buffer
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[5] = 0x7F // version byte, right after the prefix and magic
	if _, err := readFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}

// TestCorruptionErrorsAreNotUnreachable pins the repair-layer
// contract: neither a corrupt header nor a checksum failure may be
// classified as peer-unreachable — the peer answered, its answer was
// damaged, and grafting its subtree away would repair the wrong
// problem.
func TestCorruptionErrorsAreNotUnreachable(t *testing.T) {
	for _, err := range []error{ErrBadHeader, ErrChecksum} {
		if Unreachable(err) {
			t.Fatalf("Unreachable(%v) = true, want false", err)
		}
	}
	if !Unreachable(ErrTimeout) || !Unreachable(ErrClosed) || !Unreachable(ErrPeerDown) {
		t.Fatal("transport-level failures must remain unreachable")
	}
}

// countingWriter records each Write call, so the test can pin the
// single-syscall framing contract.
type countingWriter struct {
	writes int
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

// TestWriteFrameSingleWrite pins the fix for the old two-write frame:
// header and body must leave in ONE Write call, so a failure can
// never strand a peer blocked after a bare header, and a frame costs
// one syscall instead of two.
func TestWriteFrameSingleWrite(t *testing.T) {
	w := &countingWriter{}
	env := &envelope{ID: 1, Method: "Fabric.Push", Body: bytes.Repeat([]byte{9}, 10000)}
	if err := writeFrame(w, env); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Fatalf("writeFrame issued %d writes, want 1", w.writes)
	}
	out, err := readFrame(&w.buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEnvelope(env, out) {
		t.Fatal("round trip through counting writer mismatched")
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	env := &envelope{ID: 1, Body: make([]byte, MaxFrame+1)}
	if err := writeFrame(&countingWriter{}, env); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestFrameTruncatedFieldsAreBadHeader(t *testing.T) {
	// A structurally short binary payload (magic present, fields cut)
	// must be ErrBadHeader — but note a random truncation usually
	// fails the CRC first, which is fine; this case hand-builds a
	// payload whose CRC is valid but whose fields overrun.
	payload := []byte{wire.FrameMagic, wire.Version, flagMethod, 0x01, 0xFF}
	payload = wire.AppendUint32(payload, wire.Checksum(payload))
	var buf bytes.Buffer
	var head [4]byte
	binary.BigEndian.PutUint32(head[:], uint32(len(payload)))
	buf.Write(head[:])
	buf.Write(payload)
	if _, err := readFrame(&buf); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}

func BenchmarkFrameEncode(b *testing.B) {
	env := &envelope{ID: 42, Method: "Fabric.Push", Body: bytes.Repeat([]byte{0xCD}, 4096), TraceID: 7, Parent: 3}
	var sink countingWriter
	b.SetBytes(int64(len(env.Body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.buf.Reset()
		if err := writeFrame(&sink, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	env := &envelope{ID: 42, Method: "Fabric.Push", Body: bytes.Repeat([]byte{0xCD}, 4096), TraceID: 7, Parent: 3}
	var buf bytes.Buffer
	if err := writeFrame(&buf, env); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(env.Body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := readFrame(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameEncodeLegacyGob is the baseline the binary codec
// replaced, kept runnable so the win stays measurable in-tree.
func BenchmarkFrameEncodeLegacyGob(b *testing.B) {
	env := &envelope{ID: 42, Method: "Fabric.Push", Body: bytes.Repeat([]byte{0xCD}, 4096), TraceID: 7, Parent: 3}
	b.SetBytes(int64(len(env.Body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var body bytes.Buffer
		if err := gob.NewEncoder(&body).Encode(env); err != nil {
			b.Fatal(err)
		}
	}
}
