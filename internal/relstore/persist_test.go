package relstore

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	db := newCourseDB(t)
	created := time.Date(1999, 4, 21, 10, 0, 0, 0, time.UTC)
	if err := db.Insert("scripts", Row{"script_name": "s", "created": created, "version": 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("impls", Row{"starting_url": "u", "script_name": "s", "payload": []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("scripts", "author"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	db2 := NewDB()
	if err := db2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := db2.Get("scripts", "s")
	if err != nil {
		t.Fatal(err)
	}
	if !got["created"].(time.Time).Equal(created) || got["version"] != int64(2) {
		t.Errorf("restored row = %+v", got)
	}
	impl, err := db2.Get("impls", "u")
	if err != nil {
		t.Fatal(err)
	}
	if b := impl["payload"].([]byte); len(b) != 3 || b[0] != 1 {
		t.Errorf("restored payload = %v", b)
	}
	// FK behaviour must survive the restore.
	if err := db2.Delete("scripts", "s"); err == nil {
		t.Error("restored DB lost FK enforcement")
	}
	// Secondary indexes must survive the restore.
	rows, err := db2.Select(Query{Table: "scripts", Conds: []Cond{{Col: "author", Op: OpEq, Val: nil}}})
	if err != nil {
		t.Fatal(err)
	}
	_ = rows
}

func TestRestoreRejectsGarbage(t *testing.T) {
	db := NewDB()
	if err := db.Restore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestWALReplayRebuildsDatabase(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "db.wal")

	db := NewDB()
	if err := db.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	s, i := courseSchemas()
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(i); err != nil {
		t.Fatal(err)
	}
	created := time.Date(1999, 4, 21, 10, 0, 0, 0, time.UTC)
	if err := db.Insert("scripts", Row{"script_name": "a", "created": created}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("scripts", Row{"script_name": "b", "version": 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("impls", Row{"starting_url": "u", "script_name": "a", "payload": []byte{9, 8}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update("scripts", "b", Row{"version": 5}); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("scripts", "a"); err == nil {
		t.Fatal("expected FK restrict")
	}
	if err := db.Delete("impls", "u"); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db2 := NewDB()
	applied, _, err := db2.ReplayWAL(f)
	if err != nil {
		t.Fatalf("replay failed after %d records: %v", applied, err)
	}
	if applied < 6 { // 2 DDL + 3 inserts + 1 update + 1 delete (failed delete unlogged)
		t.Errorf("applied = %d, want >= 6", applied)
	}
	got, err := db2.Get("scripts", "b")
	if err != nil {
		t.Fatal(err)
	}
	if got["version"] != int64(5) {
		t.Errorf("replayed version = %v, want 5", got["version"])
	}
	a, err := db2.Get("scripts", "a")
	if err != nil {
		t.Fatal(err)
	}
	if !a["created"].(time.Time).Equal(created) {
		t.Errorf("replayed time = %v, want %v", a["created"], created)
	}
	if db2.Exists("impls", "u") {
		t.Error("deleted row resurrected by replay")
	}
}

func TestWALRollbackLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "db.wal")
	db := NewDB()
	if err := db.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	s, _ := courseSchemas()
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	if err := tx.Insert("scripts", Row{"script_name": "ghost"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db2 := NewDB()
	if _, _, err := db2.ReplayWAL(f); err != nil {
		t.Fatal(err)
	}
	if db2.Exists("scripts", "ghost") {
		t.Error("rolled-back insert reached the WAL")
	}
}

func TestWALBytesRoundTripExact(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "db.wal")
	db := NewDB()
	if err := db.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	s, i := courseSchemas()
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(i); err != nil {
		t.Fatal(err)
	}
	// A payload that is itself valid base64 text must not be corrupted.
	tricky := []byte("aGVsbG8=")
	if err := db.Insert("impls", Row{"starting_url": "u", "payload": tricky}); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db2 := NewDB()
	if _, _, err := db2.ReplayWAL(f); err != nil {
		t.Fatal(err)
	}
	got, err := db2.Get("impls", "u")
	if err != nil {
		t.Fatal(err)
	}
	if string(got["payload"].([]byte)) != "aGVsbG8=" {
		t.Errorf("payload corrupted: %q", got["payload"])
	}
}

func TestReplayCorruptLineFails(t *testing.T) {
	db := NewDB()
	if _, _, err := db.ReplayWAL(bytes.NewReader([]byte("{bad json\n"))); err == nil {
		t.Fatal("expected corrupt-line error")
	}
}

// TestReplayToleratesTornTail: a crash mid-append truncates the final
// record; everything before it must replay cleanly, without an error.
func TestReplayToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "db.wal")
	db := NewDB()
	if err := db.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	s, _ := courseSchemas()
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("scripts", Row{"script_name": "whole"}); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Append a torn copy of the last record: a prefix cut mid-value.
	last := bytes.TrimRight(raw, "\n")
	last = last[bytes.LastIndexByte(last, '\n')+1:]
	torn := append(append([]byte{}, raw...), last[:len(last)/2]...)

	db2 := NewDB()
	applied, maxSeq, err := db2.ReplayWAL(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail failed the replay: %v", err)
	}
	if applied != 2 { // the DDL record and the complete insert
		t.Errorf("applied = %d, want 2", applied)
	}
	if maxSeq != 2 {
		t.Errorf("maxSeq = %d, want 2", maxSeq)
	}
	if !db2.Exists("scripts", "whole") {
		t.Error("complete record before the torn tail was not replayed")
	}
}

// TestReplayUnboundedRecordSize: a single committed transaction beyond
// the old line scanner's 64 MiB cap (a big ImportBundle batch) must
// replay instead of failing with bufio.ErrTooLong.
func TestReplayUnboundedRecordSize(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a >64 MiB WAL record")
	}
	dir := t.TempDir()
	walPath := filepath.Join(dir, "db.wal")
	db := NewDB()
	if err := db.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	s, _ := courseSchemas()
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("x", 65<<20)
	if err := db.Insert("scripts", Row{"script_name": "big", "author": big}); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(walPath); err != nil || fi.Size() <= 64<<20 {
		t.Fatalf("test premise broken: WAL is %v bytes, want > 64 MiB", fi.Size())
	}
	f, err := os.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db2 := NewDB()
	if _, _, err := db2.ReplayWAL(f); err != nil {
		t.Fatalf("replay of an oversized record failed: %v", err)
	}
	got, err := db2.Get("scripts", "big")
	if err != nil {
		t.Fatal(err)
	}
	if got["author"].(string) != big {
		t.Error("oversized value corrupted by replay")
	}
}

// TestOpenWALSecondAttachFails: attaching a second log must not
// silently orphan the first one's handle and buffered records.
func TestOpenWALSecondAttachFails(t *testing.T) {
	dir := t.TempDir()
	first := filepath.Join(dir, "first.wal")
	db := NewDB()
	if err := db.OpenWAL(first); err != nil {
		t.Fatal(err)
	}
	s, _ := courseSchemas()
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := db.OpenWAL(filepath.Join(dir, "second.wal")); !errors.Is(err, ErrWALOpen) {
		t.Fatalf("second OpenWAL err = %v, want ErrWALOpen", err)
	}
	// The original log keeps working and keeps every record.
	if err := db.Insert("scripts", Row{"script_name": "after"}); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(first)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db2 := NewDB()
	if _, _, err := db2.ReplayWAL(f); err != nil {
		t.Fatal(err)
	}
	if !db2.Exists("scripts", "after") {
		t.Error("write after the refused re-attach is missing from the first log")
	}
}

// TestReopenedWALResumesSeq: a restarted station replaying its log and
// appending to the same file must continue the sequence numbering, not
// restart it at 1.
func TestReopenedWALResumesSeq(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "db.wal")
	db := NewDB()
	if err := db.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	s, _ := courseSchemas()
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := db.Insert("scripts", Row{"script_name": fmt.Sprintf("a%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// The restart: replay, then append to the same file.
	db2 := NewDB()
	f, err := os.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	_, maxSeq, err := db2.ReplayWAL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if maxSeq != 4 { // 1 DDL + 3 inserts
		t.Fatalf("replay high-water = %d, want 4", maxSeq)
	}
	if err := db2.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := db2.Insert("scripts", Row{"script_name": fmt.Sprintf("b%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db2.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(bytes.NewReader(raw))
	var prev uint64
	for {
		line, done, err := readWalLine(br)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if line.Seq <= prev {
			t.Fatalf("seq %d after %d: reopened WAL does not continue monotonically", line.Seq, prev)
		}
		prev = line.Seq
	}
	if prev != 6 {
		t.Errorf("final seq = %d, want 6", prev)
	}
}

func TestSnapshotOfEmptyDB(t *testing.T) {
	db := NewDB()
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDB()
	if err := db2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if len(db2.Tables()) != 0 {
		t.Error("empty snapshot produced tables")
	}
}

// Property: for a random op sequence, replaying the WAL into a fresh
// engine reproduces exactly the same table contents as the live engine.
func TestQuickWALReplayEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		dir := t.TempDir()
		walPath := filepath.Join(dir, "q.wal")
		db := NewDB()
		if err := db.OpenWAL(walPath); err != nil {
			return false
		}
		s, i := courseSchemas()
		if err := db.CreateTable(s); err != nil {
			return false
		}
		if err := db.CreateTable(i); err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 120; op++ {
			name := fmt.Sprintf("s%d", rng.Intn(20))
			switch rng.Intn(4) {
			case 0:
				db.Insert("scripts", Row{"script_name": name, "version": int64(rng.Intn(5))})
			case 1:
				db.Update("scripts", name, Row{"version": int64(rng.Intn(9))})
			case 2:
				db.Delete("scripts", name)
			case 3:
				url := fmt.Sprintf("u%d", rng.Intn(10))
				if rng.Intn(2) == 0 {
					db.Insert("impls", Row{"starting_url": url, "script_name": name})
				} else {
					db.Delete("impls", url)
				}
			}
		}
		if err := db.CloseWAL(); err != nil {
			return false
		}
		f, err := os.Open(walPath)
		if err != nil {
			return false
		}
		defer f.Close()
		db2 := NewDB()
		if _, _, err := db2.ReplayWAL(f); err != nil {
			return false
		}
		for _, table := range []string{"scripts", "impls"} {
			a, err1 := db.Select(Query{Table: table})
			b, err2 := db2.Select(Query{Table: table})
			if err1 != nil || err2 != nil || len(a) != len(b) {
				return false
			}
			for r := range a {
				for _, col := range []string{"script_name", "starting_url", "version"} {
					if compareValues(a[r][col], b[r][col]) != 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
