package fabric

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/webtest"
)

// eventsByName indexes a merged timeline for assertion convenience.
func eventsByName(events []obs.Event) map[string][]obs.Event {
	by := make(map[string][]obs.Event)
	for _, e := range events {
		by[e.Name] = append(by[e.Name], e)
	}
	return by
}

// TestEventsCollectsMergedTimelineFromAnyStation is the journal's
// end-to-end contract: kill an interior station mid-fabric, let a
// broadcast discover it, then collect the fault narrative — suspect,
// trace-correlated graft, down-confirmed — through a leaf's Events
// entry point, exercising every filter axis and the since-seq cursor,
// and pin the collection's coverage against the netsim model.
func TestEventsCollectsMergedTimelineFromAnyStation(t *testing.T) {
	const n, m = 13, 3
	stations := newFabric(t, n, m, 0)
	root := stations[0]
	spec := authorCourse(t, root, n)

	admin := DialAdmin(root.Addr())
	defer admin.Close()

	// Kill interior station 2 (children 5, 6, 7) without pre-declaring
	// it: the broadcast itself must discover the failure, so the root
	// journals the live narrative — suspect, then the graft correlated
	// to the broadcast's trace, then (after the root's confirmation
	// probe) down-confirmed.
	stations[1].Close()
	res, err := admin.Broadcast(spec.URL, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == 0 {
		t.Fatal("broadcast result carries no trace ID")
	}
	webtest.Eventually(t, 10*time.Second, "root to confirm the suspected station down", func() bool {
		return root.Down(2)
	})

	// Collect from a leaf: the entry forwards to the root, which
	// scatters the collection tree-wide and merges the timeline.
	leaf := stations[n-1]
	reply, err := leaf.Events(obs.EventFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Stations) != n {
		t.Fatalf("collection covered %d station entries, want %d", len(reply.Stations), n)
	}
	deadEntries := 0
	for _, sr := range reply.Stations {
		if sr.Err != "" {
			deadEntries++
			if sr.Pos != 2 {
				t.Errorf("unexpected dead entry for station %d: %s", sr.Pos, sr.Err)
			}
		}
	}
	if deadEntries != 1 {
		t.Errorf("collection reported %d dead stations, want 1 (position 2)", deadEntries)
	}

	by := eventsByName(reply.Events)
	for _, name := range []string{"suspect", "graft", "down-confirmed"} {
		if len(by[name]) == 0 {
			t.Fatalf("merged timeline lacks %q; events: %+v", name, reply.Events)
		}
	}
	graft := by["graft"][0]
	if graft.Station != 1 {
		t.Errorf("graft journaled at station %d, want the grafting root", graft.Station)
	}
	if graft.TraceID != res.TraceID {
		t.Errorf("graft event trace = %x, want the broadcast's %x", graft.TraceID, res.TraceID)
	}
	if line := graft.Line(); !strings.Contains(line, "child=2") {
		t.Errorf("graft line %q does not name the grafted child", line)
	}
	// The merge is SortEvents order: seq-monotonic within a station.
	var lastSeq uint64
	for _, e := range reply.Events {
		if e.Station == 1 {
			if e.Seq <= lastSeq {
				t.Errorf("root events out of order: seq %d after %d", e.Seq, lastSeq)
			}
			lastSeq = e.Seq
		}
	}

	// Category filter: only the repair events.
	repairs, err := leaf.Events(obs.EventFilter{Category: "repair"})
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs.Events) == 0 {
		t.Fatal("repair filter returned nothing")
	}
	for _, e := range repairs.Events {
		if e.Category != "repair" || e.Name != "graft" {
			t.Errorf("repair filter leaked %s/%s", e.Category, e.Name)
		}
	}

	// Severity floor: errors only — the down declaration, not the
	// warnings that led up to it.
	errs, err := leaf.Events(obs.EventFilter{MinSeverity: obs.SevError})
	if err != nil {
		t.Fatal(err)
	}
	if len(errs.Events) == 0 {
		t.Fatal("severity filter returned nothing")
	}
	for _, e := range errs.Events {
		if e.Severity < obs.SevError {
			t.Errorf("severity filter leaked %s (%s)", e.Name, e.Severity)
		}
	}
	if len(eventsByName(errs.Events)["down-confirmed"]) == 0 {
		t.Error("severity filter lost the down confirmation")
	}

	// Trace correlation: the broadcast's ID selects exactly the events
	// stamped during its traversal.
	traced, err := leaf.Events(obs.EventFilter{TraceID: res.TraceID})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Events) == 0 {
		t.Fatal("trace filter returned nothing")
	}
	for _, e := range traced.Events {
		if e.TraceID != res.TraceID {
			t.Errorf("trace filter leaked event %s with trace %x", e.Name, e.TraceID)
		}
	}
	if len(eventsByName(traced.Events)["graft"]) == 0 {
		t.Error("trace filter lost the graft")
	}

	// Netsim parity: the simulated collection over the same topology
	// with the live journals' footprint gathers the same event total
	// and covers the same live stations.
	perStation := make(map[int]int)
	for _, e := range reply.Events {
		perStation[e.Station]++
	}
	sim, err := cluster.New(cluster.Config{
		Stations: n, M: m, UplinkBps: 1.25e6, Latency: 5 * time.Millisecond,
		Watermark: 0, Mode: netsim.Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.MarkDown(2); err != nil {
		t.Fatal(err)
	}
	simRep, err := sim.CollectEvents(n, func(p int) int { return perStation[p] })
	if err != nil {
		t.Fatal(err)
	}
	if simRep.Events != len(reply.Events) {
		t.Errorf("simulator gathered %d events, live collection %d", simRep.Events, len(reply.Events))
	}
	if simRep.Covered != n-1 {
		t.Errorf("simulator covered %d stations, want %d (one down)", simRep.Covered, n-1)
	}

	// Since-seq cursor: everything so far sits at or below the cursor,
	// so a poll from the max seen sequence returns nothing...
	var maxSeq uint64
	for _, e := range reply.Events {
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
	}
	caughtUp, err := leaf.Events(obs.EventFilter{SinceSeq: maxSeq})
	if err != nil {
		t.Fatal(err)
	}
	if len(caughtUp.Events) != 0 {
		t.Fatalf("cursor at %d still returned %d events: %+v", maxSeq, len(caughtUp.Events), caughtUp.Events)
	}

	// ...and a fresh incident is exactly what the next poll delivers.
	stations[7].Close() // leaf position 8
	probeUntilDown(t, root, 8)
	news, err := leaf.Events(obs.EventFilter{SinceSeq: maxSeq})
	if err != nil {
		t.Fatal(err)
	}
	if len(news.Events) == 0 {
		t.Fatal("cursor poll after a new incident returned nothing")
	}
	for _, e := range news.Events {
		if e.Seq <= maxSeq {
			t.Errorf("cursor leaked old event %s (seq %d <= %d)", e.Name, e.Seq, maxSeq)
		}
	}
	declared := eventsByName(news.Events)["down-declared"]
	if len(declared) == 0 {
		t.Fatalf("cursor poll lacks the new down declaration; events: %+v", news.Events)
	}
	if line := declared[0].Line(); !strings.Contains(line, "pos=8") {
		t.Errorf("down declaration %q does not name station 8", line)
	}
}
