// Package workload generates deterministic synthetic courses, student
// populations and access patterns for the experiments. It plays the
// role of the three Web courses the paper's group was authoring
// (introduction to computer engineering, multimedia computing, and
// engineering drawing): structured HTML page graphs with per-page
// multimedia, plus Zipf-distributed student access traces.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/htmlmini"
	"repro/internal/media"
)

// CourseSpec parameterizes one generated course.
type CourseSpec struct {
	DBName     string
	ScriptName string
	URL        string // starting URL of the implementation
	Author     string
	Keywords   []string
	Pages      int
	// ExtraLinks adds this many random cross-links besides the
	// next-page chain, creating a realistic traversal graph.
	ExtraLinks int
	// ImagesPerPage attaches this many still images to each page.
	ImagesPerPage int
	// VideoEvery attaches one video clip to every n-th page (0 = none).
	VideoEvery int
	// AudioEvery attaches one audio narration to every n-th page (0 =
	// none).
	AudioEvery int
	// MediaScaleDown shrinks generated media sizes for fast tests while
	// keeping the distribution shape (0 = full size).
	MediaScaleDown int64
	Seed           int64
}

// Course reports what was generated.
type Course struct {
	Spec       CourseSpec
	PageCount  int
	MediaCount int
	MediaBytes int64
}

// DefaultSpec returns a small deterministic course shaped like a
// 40-page lecture.
func DefaultSpec(n int) CourseSpec {
	return CourseSpec{
		DBName:         "mmu",
		ScriptName:     fmt.Sprintf("course-%03d", n),
		URL:            fmt.Sprintf("http://mmu/course-%03d/v1", n),
		Author:         "instructor",
		Keywords:       []string{"virtual", "university", fmt.Sprintf("topic%d", n%7)},
		Pages:          40,
		ExtraLinks:     20,
		ImagesPerPage:  2,
		VideoEvery:     8,
		AudioEvery:     4,
		MediaScaleDown: 4096,
		Seed:           int64(1000 + n),
	}
}

// PagePath returns the path of the i-th page; page 0 is index.html.
func PagePath(i int) string {
	if i == 0 {
		return "index.html"
	}
	return fmt.Sprintf("page-%04d.html", i)
}

// BuildCourse materializes the course into a document store: database
// and script rows when missing, the implementation, a linked page
// graph, and the per-page multimedia attached through the BLOB layer.
func BuildCourse(store *docdb.Store, spec CourseSpec) (Course, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	gen := media.NewGenerator(spec.Seed + 1)
	gen.ScaleDown = spec.MediaScaleDown

	if _, err := store.Database(spec.DBName); err != nil {
		if err := store.CreateDatabase(docdb.Database{Name: spec.DBName, Author: spec.Author}); err != nil {
			return Course{}, err
		}
	}
	if err := store.CreateScript(docdb.Script{
		Name:        spec.ScriptName,
		DBName:      spec.DBName,
		Keywords:    spec.Keywords,
		Author:      spec.Author,
		Description: "synthetic course " + spec.ScriptName,
		PctComplete: 100,
	}); err != nil {
		return Course{}, err
	}
	if err := store.AddImplementation(docdb.Implementation{
		StartingURL: spec.URL,
		ScriptName:  spec.ScriptName,
		Author:      spec.Author,
	}); err != nil {
		return Course{}, err
	}

	course := Course{Spec: spec, PageCount: spec.Pages}
	// Attach media page by page, collecting asset names per page.
	assets := make([][]string, spec.Pages)
	attach := func(page int, kind blob.Kind) error {
		r := gen.Generate(kind)
		if _, err := store.AttachImplMedia(spec.URL, r.Name, r.Kind, r.Data); err != nil {
			return err
		}
		assets[page] = append(assets[page], r.Name)
		course.MediaCount++
		course.MediaBytes += int64(len(r.Data))
		return nil
	}
	for p := 0; p < spec.Pages; p++ {
		for i := 0; i < spec.ImagesPerPage; i++ {
			if err := attach(p, blob.KindImage); err != nil {
				return Course{}, err
			}
		}
		if spec.VideoEvery > 0 && p%spec.VideoEvery == 0 {
			if err := attach(p, blob.KindVideo); err != nil {
				return Course{}, err
			}
		}
		if spec.AudioEvery > 0 && p%spec.AudioEvery == 0 {
			if err := attach(p, blob.KindAudio); err != nil {
				return Course{}, err
			}
		}
	}
	// Build the page graph: a next-page chain plus random cross links.
	links := make([][]string, spec.Pages)
	for p := 0; p+1 < spec.Pages; p++ {
		links[p] = append(links[p], PagePath(p+1))
	}
	for i := 0; i < spec.ExtraLinks && spec.Pages > 1; i++ {
		from := rng.Intn(spec.Pages)
		to := rng.Intn(spec.Pages)
		if to == from {
			to = (to + 1) % spec.Pages
		}
		links[from] = append(links[from], PagePath(to))
	}
	for p := 0; p < spec.Pages; p++ {
		title := fmt.Sprintf("%s — page %d", spec.ScriptName, p)
		body := fmt.Sprintf("Lecture material for %s, page %d of %d.", spec.ScriptName, p, spec.Pages)
		page := htmlmini.Page(title, links[p], assets[p], body)
		if err := store.PutHTML(spec.URL, PagePath(p), page); err != nil {
			return Course{}, err
		}
	}
	return course, nil
}

// Access is one student page-view event.
type Access struct {
	Student int
	Doc     int // course index
	Page    int
}

// AccessPattern draws a Zipf-distributed trace: course popularity is
// Zipfian (a few hot lectures), students uniform, pages uniform.
func AccessPattern(students, docs, pages, steps int, seed int64) []Access {
	rng := rand.New(rand.NewSource(seed))
	if docs < 1 {
		docs = 1
	}
	if pages < 1 {
		pages = 1
	}
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(docs-1))
	out := make([]Access, steps)
	for i := range out {
		out[i] = Access{
			Student: rng.Intn(max(students, 1)),
			Doc:     int(zipf.Uint64()),
			Page:    rng.Intn(pages),
		}
	}
	return out
}

// Vocabulary returns a deterministic keyword vocabulary of the given
// size.
func Vocabulary(size int) []string {
	out := make([]string, size)
	for i := range out {
		out[i] = fmt.Sprintf("kw%04d", i)
	}
	return out
}

// PickKeywords draws k distinct Zipf-weighted keywords from a
// vocabulary, modeling the skewed keyword usage of real course
// catalogs.
func PickKeywords(rng *rand.Rand, vocab []string, k int) []string {
	if k > len(vocab) {
		k = len(vocab)
	}
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(vocab)-1))
	seen := make(map[int]bool, k)
	out := make([]string, 0, k)
	for len(out) < k {
		idx := int(zipf.Uint64())
		if seen[idx] {
			idx = rng.Intn(len(vocab)) // fall back to uniform to finish
			if seen[idx] {
				continue
			}
		}
		seen[idx] = true
		out = append(out, vocab[idx])
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
