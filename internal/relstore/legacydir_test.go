package relstore_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/relstore"
)

// legacyBlobEntry mirrors blob's unexported snapshotEntry: gob matches
// fields by name, so this writes the exact sidecar the pre-binary
// encoder produced.
type legacyBlobEntry struct {
	Hash     string
	Kind     blob.Kind
	Refcount int
	Names    []string
	Data     []byte
}

// TestStationRecoversPreOverhaulDataDir is the acceptance check for
// the format overhaul: a station pointed at a data directory written
// entirely in the pre-overhaul formats — gob snapshot, gob BLOB
// sidecar, JSON-line WAL tail — must recover identical state through
// the read-side fallbacks, then carry on appending in the new binary
// format.
func TestStationRecoversPreOverhaulDataDir(t *testing.T) {
	// Stage 1: build canonical state with a live (new-format) station
	// store: a course with a page and media, checkpointed, plus one
	// post-checkpoint page that only reaches the WAL tail.
	srcDir := t.TempDir()
	src := openStore(t)
	if _, err := src.Recover(srcDir); err != nil {
		t.Fatal(err)
	}
	const url = "http://mmu/os-course"
	seedLegacyCourse(t, src, url)
	info, err := src.CheckpointNow()
	if err != nil {
		t.Fatal(err)
	}
	// Capture the legacy snapshot NOW — it must cut history exactly
	// where the checkpoint did, before the tail-only write below.
	snapBytes, err := relstore.EncodeLegacyCkptForTest(src.Rel(), info.Gen, info.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.PutHTML(url, "late.html", []byte("<html>tail page</html>")); err != nil {
		t.Fatal(err)
	}
	wantIndex, err := src.HTML(url, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	media, err := src.ImplMedia(url)
	if err != nil || len(media) == 0 {
		t.Fatalf("media = %v err=%v", media, err)
	}

	// Stage 2: transcribe that state into a pre-overhaul directory.
	legacyDir := t.TempDir()
	writeLegacyFile(t, legacyDir, fmt.Sprintf("snap-%010d", info.Gen), snapBytes)

	var entries []legacyBlobEntry
	for _, ref := range src.Blobs().List() {
		data, err := src.Blobs().Get(ref)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, legacyBlobEntry{
			Hash:     ref.Hash,
			Kind:     ref.Kind,
			Refcount: src.Blobs().RefCount(ref),
			Names:    src.Blobs().Names(ref),
			Data:     data,
		})
	}
	var blobBuf bytes.Buffer
	if err := gob.NewEncoder(&blobBuf).Encode(entries); err != nil {
		t.Fatal(err)
	}
	writeLegacyFile(t, legacyDir, fmt.Sprintf("blobs-%010d", info.Gen), blobBuf.Bytes())

	tailRaw, err := os.ReadFile(filepath.Join(srcDir, fmt.Sprintf("wal-%010d", info.Gen)))
	if err != nil {
		t.Fatal(err)
	}
	tailJSON, err := relstore.TranscodeWALToLegacyJSONForTest(tailRaw)
	if err != nil {
		t.Fatal(err)
	}
	if len(tailJSON) == 0 || tailJSON[0] != '{' {
		t.Fatalf("transcoded tail is not JSON lines: %q", tailJSON[:min(len(tailJSON), 20)])
	}
	writeLegacyFile(t, legacyDir, fmt.Sprintf("wal-%010d", info.Gen), tailJSON)

	// Stage 3: a fresh station recovers the legacy directory through
	// the fallback readers.
	st := openStore(t)
	rec, err := st.Recover(legacyDir)
	if err != nil {
		t.Fatalf("recovery from pre-overhaul dir: %v", err)
	}
	if rec.Gen != info.Gen || rec.Applied == 0 {
		t.Fatalf("recovery = %+v, want gen %d with a replayed tail", rec, info.Gen)
	}
	got, err := st.HTML(url, "index.html")
	if err != nil || !bytes.Equal(got, wantIndex) {
		t.Fatalf("checkpointed page differs after legacy recovery (err=%v)", err)
	}
	if _, err := st.HTML(url, "late.html"); err != nil {
		t.Fatalf("JSON tail page lost: %v", err)
	}
	for _, m := range media {
		if !st.Blobs().Has(m.Ref) {
			t.Fatalf("BLOB %s lost across the gob sidecar fallback", m.Name)
		}
		want, _ := src.Blobs().Get(m.Ref)
		data, err := st.Blobs().Get(m.Ref)
		if err != nil || !bytes.Equal(data, want) {
			t.Fatalf("BLOB %s bytes differ after legacy recovery (err=%v)", m.Name, err)
		}
	}

	// Stage 4: the recovered station appends in the NEW format — the
	// tail is now mixed JSON + binary — and the next restart replays it.
	if err := st.PutHTML(url, "upgraded.html", []byte("<html>binary append</html>")); err != nil {
		t.Fatal(err)
	}
	mixed, err := os.ReadFile(filepath.Join(legacyDir, fmt.Sprintf("wal-%010d", info.Gen)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(mixed, []byte("{")) || bytes.Equal(mixed, tailJSON) {
		t.Fatal("upgraded tail is not JSON-prefix + binary-suffix")
	}
	st2 := openStore(t)
	if _, err := st2.Recover(legacyDir); err != nil {
		t.Fatalf("recovery of the mixed tail: %v", err)
	}
	if _, err := st2.HTML(url, "upgraded.html"); err != nil {
		t.Fatalf("binary append lost after mixed-tail recovery: %v", err)
	}
}

func openStore(t *testing.T) *docdb.Store {
	t.Helper()
	s, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	s.Now = func() time.Time { return time.Date(1999, 4, 21, 9, 0, 0, 0, time.UTC) }
	return s
}

func seedLegacyCourse(t *testing.T, s *docdb.Store, url string) {
	t.Helper()
	if err := s.CreateDatabase(docdb.Database{Name: "mmu"}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateScript(docdb.Script{
		Name: "os-course", DBName: "mmu", Author: "Shih",
		Description: "lecture notes", Keywords: []string{"os"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddImplementation(docdb.Implementation{
		StartingURL: url, ScriptName: "os-course", Author: "Shih",
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutHTML(url, "index.html", []byte("<html>virtual memory</html>")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttachImplMedia(url, "fig1.gif", blob.KindImage, bytes.Repeat([]byte{0xA5, 0x01}, 512)); err != nil {
		t.Fatal(err)
	}
}

func writeLegacyFile(t *testing.T, dir, name string, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
