package webtest

import (
	"strings"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/docdb"
	"repro/internal/htmlmini"
	"repro/internal/relstore"
	"repro/internal/workload"
)

func newStore(t *testing.T) *docdb.Store {
	t.Helper()
	s, err := docdb.Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	s.Now = func() time.Time { return time.Date(1999, 4, 21, 0, 0, 0, 0, time.UTC) }
	return s
}

// buildFixture creates a small course with deliberate defects:
//   - index -> a -> b, and index references img ok.gif (stored)
//   - a links to ghost.html (bad URL)
//   - b references missing.gif (missing object)
//   - orphan.html is stored but unreachable (redundant)
//   - unused.gif is stored media never referenced (redundant)
//   - b has no title (inconsistency)
func buildFixture(t *testing.T, s *docdb.Store) string {
	t.Helper()
	const url = "http://mmu/fixture/v1"
	if err := s.CreateDatabase(docdb.Database{Name: "mmu"}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateScript(docdb.Script{Name: "fixture", DBName: "mmu"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddImplementation(docdb.Implementation{StartingURL: url, ScriptName: "fixture"}); err != nil {
		t.Fatal(err)
	}
	put := func(path string, content []byte) {
		if err := s.PutHTML(url, path, content); err != nil {
			t.Fatal(err)
		}
	}
	put("index.html", htmlmini.Page("Index", []string{"a.html"}, []string{"ok.gif"}, "start"))
	put("a.html", htmlmini.Page("A", []string{"b.html", "ghost.html"}, nil, "a"))
	put("b.html", []byte(`<html><body><img src="missing.gif"><a href="index.html">home</a></body></html>`))
	put("orphan.html", htmlmini.Page("Orphan", nil, nil, "unreachable"))
	if _, err := s.AttachImplMedia(url, "ok.gif", blob.KindImage, []byte("GIF89a-ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttachImplMedia(url, "unused.gif", blob.KindImage, []byte("GIF89a-unused")); err != nil {
		t.Fatal(err)
	}
	return url
}

func TestWhiteBoxFindsAllDefectClasses(t *testing.T) {
	s := newStore(t)
	url := buildFixture(t, s)
	suite := &Suite{Store: s}
	f, err := suite.WhiteBox(url)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.VisitedPages) != 3 {
		t.Errorf("visited = %v", f.VisitedPages)
	}
	if len(f.BadURLs) != 1 || f.BadURLs[0] != "ghost.html" {
		t.Errorf("bad urls = %v", f.BadURLs)
	}
	if len(f.MissingObjects) != 1 || f.MissingObjects[0] != "missing.gif" {
		t.Errorf("missing = %v", f.MissingObjects)
	}
	wantRedundant := map[string]bool{"orphan.html": true, "unused.gif": true}
	if len(f.RedundantObjects) != 2 || !wantRedundant[f.RedundantObjects[0]] || !wantRedundant[f.RedundantObjects[1]] {
		t.Errorf("redundant = %v", f.RedundantObjects)
	}
	foundTitle := false
	for _, inc := range f.Inconsistencies {
		if strings.Contains(inc, "b.html has no title") {
			foundTitle = true
		}
	}
	if !foundTitle {
		t.Errorf("inconsistencies = %v", f.Inconsistencies)
	}
	if f.Clean() {
		t.Error("defective course reported clean")
	}
}

func TestWhiteBoxCleanCourse(t *testing.T) {
	s := newStore(t)
	spec := workload.DefaultSpec(1)
	spec.Pages = 10
	spec.ExtraLinks = 5
	spec.MediaScaleDown = 65536
	// The chain structure guarantees reachability; generated assets are
	// all attached, so no defects are expected.
	c, err := workload.BuildCourse(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{Store: s}
	f, err := suite.WhiteBox(c.Spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Clean() {
		t.Errorf("generated course reported defects: bad=%v missing=%v redundant=%v inc=%v",
			f.BadURLs, f.MissingObjects, f.RedundantObjects, f.Inconsistencies)
	}
	cov, err := suite.Coverage(c.Spec.URL, f)
	if err != nil {
		t.Fatal(err)
	}
	if cov != 1.0 {
		t.Errorf("white-box coverage = %v, want 1.0", cov)
	}
}

func TestWhiteBoxMissingEntry(t *testing.T) {
	s := newStore(t)
	url := buildFixture(t, s)
	suite := &Suite{Store: s, Entry: "nonexistent.html"}
	f, err := suite.WhiteBox(url)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Inconsistencies) != 1 || !strings.Contains(f.Inconsistencies[0], "absent") {
		t.Errorf("inconsistencies = %v", f.Inconsistencies)
	}
}

func TestBlackBoxWalk(t *testing.T) {
	s := newStore(t)
	url := buildFixture(t, s)
	suite := &Suite{Store: s}
	f, err := suite.BlackBox(url, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.VisitedPages) == 0 {
		t.Fatal("no pages visited")
	}
	if len(f.Messages) == 0 {
		t.Fatal("no traversal messages recorded")
	}
	// With 200 steps the walk almost surely trips over ghost.html.
	if len(f.BadURLs) != 1 || f.BadURLs[0] != "ghost.html" {
		t.Errorf("bad urls = %v", f.BadURLs)
	}
}

func TestBlackBoxDeterministicBySeed(t *testing.T) {
	s := newStore(t)
	url := buildFixture(t, s)
	suite := &Suite{Store: s}
	f1, err := suite.BlackBox(url, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := suite.BlackBox(url, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(f1.Messages, "|") != strings.Join(f2.Messages, "|") {
		t.Error("same seed produced different walks")
	}
}

func TestBlackBoxCoverageBelowWhiteBox(t *testing.T) {
	s := newStore(t)
	spec := workload.DefaultSpec(3)
	spec.Pages = 30
	spec.ExtraLinks = 10
	spec.MediaScaleDown = 65536
	c, err := workload.BuildCourse(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{Store: s}
	white, err := suite.WhiteBox(c.Spec.URL)
	if err != nil {
		t.Fatal(err)
	}
	black, err := suite.BlackBox(c.Spec.URL, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	wcov, _ := suite.Coverage(c.Spec.URL, white)
	bcov, _ := suite.Coverage(c.Spec.URL, black)
	if wcov != 1.0 {
		t.Errorf("white coverage = %v", wcov)
	}
	if bcov >= wcov {
		t.Errorf("10-step black-box coverage %v should be below white-box %v", bcov, wcov)
	}
}

func TestComplexityMetrics(t *testing.T) {
	s := newStore(t)
	url := buildFixture(t, s)
	suite := &Suite{Store: s}
	c, err := suite.Complexity(url)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pages != 4 {
		t.Errorf("pages = %d", c.Pages)
	}
	// Internal links among stored pages: index->a, a->b, b->index.
	if c.Links != 3 {
		t.Errorf("links = %d", c.Links)
	}
	// ok.gif on index + missing.gif on b.
	if c.AssetRefs != 2 {
		t.Errorf("assets = %d", c.AssetRefs)
	}
	if c.MaxDepth != 2 {
		t.Errorf("depth = %d", c.MaxDepth)
	}
	// Two components: the index/a/b cycle and the orphan page.
	if c.Components != 2 {
		t.Errorf("components = %d", c.Components)
	}
	// Cyclomatic: E - N + 2P = 3 - 4 + 4 = 3.
	if c.Cyclomatic != 3 {
		t.Errorf("cyclomatic = %d", c.Cyclomatic)
	}
	if c.MediaBytes != int64(len("GIF89a-ok")+len("GIF89a-unused")) {
		t.Errorf("media bytes = %d", c.MediaBytes)
	}
}

func TestReportPersistsRecordAndBug(t *testing.T) {
	s := newStore(t)
	url := buildFixture(t, s)
	suite := &Suite{Store: s}
	testName, bugName, err := suite.Report(url, "Huang", 1)
	if err != nil {
		t.Fatal(err)
	}
	if testName == "" || bugName == "" {
		t.Fatalf("names = %q %q", testName, bugName)
	}
	recs, err := s.TestRecords("fixture")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Scope != "global" || len(recs[0].Messages) == 0 {
		t.Errorf("records = %+v", recs)
	}
	bugs, err := s.BugReports(testName)
	if err != nil {
		t.Fatal(err)
	}
	if len(bugs) != 1 {
		t.Fatalf("bugs = %+v", bugs)
	}
	if len(bugs[0].BadURLs) != 1 || len(bugs[0].MissingObjects) != 1 || len(bugs[0].RedundantObjects) != 2 {
		t.Errorf("bug = %+v", bugs[0])
	}
}

func TestReportCleanCourseFilesNoBug(t *testing.T) {
	s := newStore(t)
	spec := workload.DefaultSpec(5)
	spec.Pages = 6
	spec.ExtraLinks = 2
	spec.MediaScaleDown = 65536
	c, err := workload.BuildCourse(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{Store: s}
	testName, bugName, err := suite.Report(c.Spec.URL, "Huang", 1)
	if err != nil {
		t.Fatal(err)
	}
	if testName == "" {
		t.Error("no test record")
	}
	if bugName != "" {
		t.Errorf("clean course produced bug %s", bugName)
	}
}

func TestLocalScopeSinglePage(t *testing.T) {
	s := newStore(t)
	url := buildFixture(t, s)
	suite := &Suite{Store: s}

	// index.html is clean locally: its link resolves, its asset exists.
	f, err := suite.Local(url, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Clean() {
		t.Errorf("index.html local findings: %+v", f)
	}
	if len(f.VisitedPages) != 1 || f.VisitedPages[0] != "index.html" {
		t.Errorf("visited = %v", f.VisitedPages)
	}

	// a.html has the dead link.
	f, err = suite.Local(url, "a.html")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.BadURLs) != 1 || f.BadURLs[0] != "ghost.html" {
		t.Errorf("bad urls = %v", f.BadURLs)
	}

	// b.html has the missing asset and no title; the orphan page is NOT
	// reported at local scope (that is a global property).
	f, err = suite.Local(url, "b.html")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.MissingObjects) != 1 || f.MissingObjects[0] != "missing.gif" {
		t.Errorf("missing = %v", f.MissingObjects)
	}
	if len(f.RedundantObjects) != 0 {
		t.Errorf("local scope reported redundant objects: %v", f.RedundantObjects)
	}
	if len(f.Inconsistencies) != 1 {
		t.Errorf("inconsistencies = %v", f.Inconsistencies)
	}

	// An absent page is an inconsistency, not an error.
	f, err = suite.Local(url, "nope.html")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Inconsistencies) != 1 {
		t.Errorf("absent page findings = %+v", f)
	}
}
