package relstore

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestBinaryWALCrashMatrix truncates a binary WAL at EVERY byte offset
// — record boundaries, mid-payload, mid-length, mid-CRC — and demands
// each prefix replay exactly the committed transactions it fully
// contains, never an error and never a partial transaction.
func TestBinaryWALCrashMatrix(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "db.wal")
	db := NewDB()
	if err := db.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	s, _ := courseSchemas()
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	// Record boundaries: the file size after each append (appends flush).
	boundaries := []int64{fileSize(t, walPath)}
	created := time.Date(1999, 4, 21, 9, 30, 0, 12345, time.UTC)
	const rows = 6
	for i := 0; i < rows; i++ {
		row := Row{
			"script_name": fmt.Sprintf("r%d", i),
			"author":      string([]byte{'a', 0x0A, byte(i)}), // embedded newline
			"version":     int64(i),
			"created":     created.Add(time.Duration(i) * time.Second),
			"archived":    i%2 == 0,
		}
		if err := db.Insert("scripts", row); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, fileSize(t, walPath))
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != boundaries[len(boundaries)-1] {
		t.Fatalf("file is %d bytes, last boundary %d", len(raw), boundaries[len(boundaries)-1])
	}

	for cut := 0; cut <= len(raw); cut++ {
		wantApplied := 0
		for _, b := range boundaries {
			if int64(cut) >= b {
				wantApplied++
			}
		}
		db2 := NewDB()
		applied, maxSeq, err := db2.ReplayWAL(bytes.NewReader(raw[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: replay error: %v", cut, err)
		}
		if applied != wantApplied {
			t.Fatalf("cut=%d: applied = %d, want %d", cut, applied, wantApplied)
		}
		if maxSeq != uint64(wantApplied) {
			t.Fatalf("cut=%d: maxSeq = %d, want %d", cut, maxSeq, wantApplied)
		}
		// The committed prefix is exactly present: DDL is record 1,
		// insert k is record k+1.
		for i := 0; i < rows; i++ {
			want := wantApplied >= i+2
			if got := wantApplied >= 1 && db2.Exists("scripts", fmt.Sprintf("r%d", i)); got != want {
				t.Fatalf("cut=%d: row r%d present=%v, want %v", cut, i, got, want)
			}
		}
	}

	// One full-file replay round-trips the native value types exactly.
	db3 := NewDB()
	if _, _, err := db3.ReplayWAL(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	got, err := db3.Get("scripts", "r3")
	if err != nil {
		t.Fatal(err)
	}
	if !got["created"].(time.Time).Equal(created.Add(3*time.Second)) ||
		got["version"] != int64(3) || got["archived"] != false ||
		got["author"].(string) != string([]byte{'a', 0x0A, 3}) {
		t.Fatalf("replayed row = %+v", got)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// legacyWalJSON renders one committed transaction the way the
// pre-binary WAL writer did: a JSON line with []byte and time.Time
// values wrapped in $b/$t tagged objects.
func legacyWalJSON(t *testing.T, seq uint64, recs []walRec) []byte {
	t.Helper()
	enc := make([]walRec, len(recs))
	for i, rec := range recs {
		rec.Row = walEncodeRow(rec.Row)
		rec.PK = walEncodeValue(rec.PK)
		enc[i] = rec
	}
	buf, err := json.Marshal(walLine{Seq: seq, Commit: true, Recs: enc})
	if err != nil {
		t.Fatal(err)
	}
	return append(buf, '\n')
}

// TestMixedLegacyAndBinaryWAL replays the file an upgraded station
// leaves behind: a legacy JSON prefix with binary records appended
// after the new writer took over. Both halves must apply, tagged
// values must decode to their native types, and the sequence numbers
// must keep climbing across the format switch.
func TestMixedLegacyAndBinaryWAL(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "db.wal")
	s, impls := courseSchemas()
	created := time.Date(1998, 11, 3, 14, 0, 0, 0, time.UTC)

	// The legacy prefix: DDL for both tables, one insert carrying a
	// tagged time, one carrying tagged bytes.
	var legacy []byte
	legacy = append(legacy, legacyWalJSON(t, 1, []walRec{{Op: "create", Table: s.Name, DDL: &s}})...)
	legacy = append(legacy, legacyWalJSON(t, 2, []walRec{{Op: "create", Table: impls.Name, DDL: &impls}})...)
	legacy = append(legacy, legacyWalJSON(t, 3, []walRec{
		{Op: "insert", Table: "scripts", Row: Row{"script_name": "old", "created": created}},
	})...)
	legacy = append(legacy, legacyWalJSON(t, 4, []walRec{
		{Op: "insert", Table: "impls", Row: Row{"starting_url": "u1", "script_name": "old", "payload": []byte{9, 8, 7}}},
	})...)
	if err := os.WriteFile(walPath, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	// The upgraded process: replay the legacy log, attach, append in the
	// binary format.
	db := NewDB()
	f, err := os.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ReplayWAL(f); err != nil {
		f.Close()
		t.Fatalf("legacy replay: %v", err)
	}
	f.Close()
	if err := db.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("scripts", Row{"script_name": "new", "created": created.Add(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update("impls", "u1", Row{"starting_url": "u1", "script_name": "new", "payload": []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// A fresh process replays the mixed file end to end.
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("{")) || !bytes.Contains(raw, []byte{wire.RecordMagic}) {
		t.Fatal("test premise broken: file is not legacy-prefix + binary-suffix")
	}
	db2 := NewDB()
	applied, maxSeq, err := db2.ReplayWAL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("mixed replay: %v", err)
	}
	if applied != 6 || maxSeq != 6 {
		t.Fatalf("applied=%d maxSeq=%d, want 6/6", applied, maxSeq)
	}
	old, err := db2.Get("scripts", "old")
	if err != nil {
		t.Fatal(err)
	}
	if !old["created"].(time.Time).Equal(created) {
		t.Fatalf("legacy $t value decoded to %v", old["created"])
	}
	impl, err := db2.Get("impls", "u1")
	if err != nil {
		t.Fatal(err)
	}
	if b := impl["payload"].([]byte); len(b) != 1 || b[0] != 1 {
		t.Fatalf("payload after mixed replay = %v", b)
	}
	if impl["script_name"].(string) != "new" {
		t.Fatalf("binary update lost: %+v", impl)
	}
}

// TestLegacyGobSnapshotRestores: Restore must still load a snapshot
// written by the pre-binary gob encoder, bit-identically.
func TestLegacyGobSnapshotRestores(t *testing.T) {
	db := newCourseDB(t)
	created := time.Date(1999, 4, 21, 10, 0, 0, 0, time.UTC)
	if err := db.Insert("scripts", Row{"script_name": "s", "created": created, "version": int64(7)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("impls", Row{"starting_url": "u", "script_name": "s", "payload": []byte{4, 5, 6}}); err != nil {
		t.Fatal(err)
	}
	db.metaMu.RLock()
	names := db.lockAllTablesShared()
	snap := db.captureLocked()
	db.unlockAllTablesShared(names)
	db.metaMu.RUnlock()

	// The legacy writer: a bare gob stream of the snapshot value.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	db2 := NewDB()
	if err := db2.Restore(&buf); err != nil {
		t.Fatalf("legacy gob snapshot rejected: %v", err)
	}
	got, err := db2.Get("scripts", "s")
	if err != nil {
		t.Fatal(err)
	}
	if !got["created"].(time.Time).Equal(created) || got["version"] != int64(7) {
		t.Fatalf("restored row = %+v", got)
	}
	impl, err := db2.Get("impls", "u")
	if err != nil {
		t.Fatal(err)
	}
	if b := impl["payload"].([]byte); !bytes.Equal(b, []byte{4, 5, 6}) {
		t.Fatalf("restored payload = %v", b)
	}
}

// TestLegacyGobCheckpointLoads: a checkpoint snapshot file written by
// the pre-binary gob encoder must still load through readSnapshotFile
// (and thus OpenDurable), including its generation header.
func TestLegacyGobCheckpointLoads(t *testing.T) {
	db := newCourseDB(t)
	if err := db.Insert("scripts", Row{"script_name": "legacy"}); err != nil {
		t.Fatal(err)
	}
	db.metaMu.RLock()
	names := db.lockAllTablesShared()
	snap := db.captureLocked()
	db.unlockAllTablesShared(names)
	db.metaMu.RUnlock()

	dir := t.TempDir()
	path := filepath.Join(dir, snapFileName(3))
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ckptImage{Gen: 3, Seq: 41, Snap: snap}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	img, err := readSnapshotFile(path)
	if err != nil {
		t.Fatalf("legacy gob checkpoint rejected: %v", err)
	}
	if img.Gen != 3 || img.Seq != 41 {
		t.Fatalf("header = gen %d seq %d, want 3/41", img.Gen, img.Seq)
	}
	db2 := NewDB()
	if err := db2.installSnapshot(&img.Snap); err != nil {
		t.Fatal(err)
	}
	if !db2.Exists("scripts", "legacy") {
		t.Fatal("legacy checkpoint row lost")
	}
}

// TestBinaryWALNeverJSONEncodesBody pins the tentpole's perf claim: a
// document body appended through the WAL lands on disk as its raw
// bytes, not base64-inflated JSON.
func TestBinaryWALNeverJSONEncodesBody(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "db.wal")
	db := NewDB()
	if err := db.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	s, impls := courseSchemas()
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(impls); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("scripts", Row{"script_name": "s"}); err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte{0xFF, 0x00, 0xA5}, 4096) // 12 KiB, not base64-friendly
	if err := db.Insert("impls", Row{"starting_url": "u", "script_name": "s", "payload": body}); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, body) {
		t.Fatal("document body not stored as raw bytes")
	}
	// Raw body + framing must stay far below the ~4/3 base64 growth.
	if max := int64(len(body)) + 2048; fileSize(t, walPath) > max {
		t.Fatalf("WAL is %d bytes for a %d-byte body", fileSize(t, walPath), len(body))
	}
}
