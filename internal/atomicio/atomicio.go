// Package atomicio writes files crash-safely: content lands in a
// temporary file in the destination directory, is fsynced, and only
// then renamed over the final name. A reader therefore sees either the
// previous complete file or the new complete file, never a torn one —
// the contract every checkpoint, snapshot and sidecar writer in the
// station depends on. (The old shutdown path opened the destination
// with os.Create and wrote in place; a crash mid-write destroyed the
// only copy.)
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// The temporary file lives in path's directory (rename is only atomic
// within one filesystem) and is removed on any failure. The data is
// synced to stable storage before the rename, and the directory is
// synced after it, so a crash at any instant leaves either the old
// file or the new one.
func WriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: creating temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := write(tmp); err != nil {
		return fail(fmt.Errorf("atomicio: writing %s: %w", path, err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("atomicio: syncing %s: %w", path, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: closing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: installing %s: %w", path, err)
	}
	SyncDir(dir)
	return nil
}

// SyncDir fsyncs a directory so a just-renamed entry survives a crash.
// Errors are ignored: some filesystems refuse directory fsync, and the
// rename itself already succeeded.
func SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// RemoveTemps deletes leftover temporary files a crashed writer may
// have stranded in dir. It is safe to call concurrently with WriteFile
// only at startup, before writers run.
func RemoveTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && isTemp(e.Name()) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// isTemp reports whether a file name matches WriteFile's temp pattern.
func isTemp(name string) bool {
	for i := 0; i+5 <= len(name); i++ {
		if name[i:i+5] == ".tmp-" {
			return true
		}
	}
	return false
}
