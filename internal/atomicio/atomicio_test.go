package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("one"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "one" {
		t.Fatalf("content = %q", got)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("two"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "two" {
		t.Fatalf("content after replace = %q", got)
	}
	// No temp debris after success.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("dir holds %d entries, want 1", len(entries))
	}
}

func TestWriteFileFailureKeepsOldCopy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("good"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		w.Write([]byte("torn"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// The previous complete file survives; the torn temp is gone.
	if got, _ := os.ReadFile(path); string(got) != "good" {
		t.Fatalf("content after failed write = %q", got)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp debris left behind: %s", e.Name())
		}
	}
}

func TestRemoveTemps(t *testing.T) {
	dir := t.TempDir()
	keep := filepath.Join(dir, "snap-0000000001")
	stray := filepath.Join(dir, "snap-0000000002.tmp-12345")
	os.WriteFile(keep, []byte("x"), 0o644)
	os.WriteFile(stray, []byte("y"), 0o644)
	RemoveTemps(dir)
	if _, err := os.Stat(keep); err != nil {
		t.Error("RemoveTemps deleted a real file")
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Error("RemoveTemps kept a stray temp")
	}
}
