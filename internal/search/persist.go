package search

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/docdb"
	"repro/internal/relstore"
	"repro/internal/schema"
	"repro/internal/wire"
)

// Checkpoint coupling and recovery. The index is a cache over the
// relational content tables, so persistence is best-effort: a
// checkpoint captures the token streams as a search-<gen> sidecar
// (docdb writes the file beside its BLOB sidecar), and recovery loads
// it only when it provably matches the restored relational state —
// otherwise the index rebuilds from the tables, which is always
// correct and costs one scan of the content rows.

// sidecarImage is the payload of a search-<gen> sidecar. On disk it
// is a binary image under wire.SearchMagic:
//
//	[uvarint ndocs] per doc:
//	  [key string][kind string][url string][path string]
//	  [uvarint ntokens tokens...]
//
// Pre-overhaul gob sidecars load one last time through the read
// fallback.
type sidecarImage struct {
	Docs map[string]*doc
}

// CaptureCheckpoint snapshots the index for the checkpoint sidecar.
// docdb calls it inside the write-quiescent window — and content
// writes index through commit-atomic hooks (relstore.ApplyThen), so
// the captured token streams describe exactly the history cut of the
// relational snapshot. Only a shallow map copy happens in the window
// (documents are immutable once installed); the returned closure does
// the encoding after the window closes, off the writers' path.
func (ix *Index) CaptureCheckpoint() func() ([]byte, error) {
	ix.mu.RLock()
	docs := make(map[string]*doc, len(ix.docs))
	for k, d := range ix.docs {
		docs[k] = d
	}
	ix.mu.RUnlock()
	return func() ([]byte, error) {
		payload := wire.GetBuf()
		payload = wire.AppendUvarint(payload, uint64(len(docs)))
		keys := make([]string, 0, len(docs))
		for k := range docs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			d := docs[k]
			payload = wire.AppendString(payload, k)
			payload = wire.AppendString(payload, d.Kind)
			payload = wire.AppendString(payload, d.URL)
			payload = wire.AppendString(payload, d.Path)
			payload = wire.AppendUvarint(payload, uint64(len(d.Tokens)))
			for _, tok := range d.Tokens {
				payload = wire.AppendString(payload, tok)
			}
		}
		sealed := wire.SealImage(wire.SearchMagic, payload)
		wire.PutBuf(payload)
		return sealed, nil
	}
}

// decodeSidecar parses either sidecar format.
func decodeSidecar(sidecar []byte) (map[string]*doc, error) {
	if !wire.IsImage(wire.SearchMagic, sidecar) {
		var img sidecarImage
		if err := gob.NewDecoder(bytes.NewReader(sidecar)).Decode(&img); err != nil {
			return nil, fmt.Errorf("search: decoding sidecar: %w", err)
		}
		return img.Docs, nil
	}
	payload, err := wire.OpenImage(wire.SearchMagic, sidecar)
	if err != nil {
		return nil, fmt.Errorf("search: decoding sidecar: %w", err)
	}
	r := wire.NewReader(payload)
	n := int(r.Uvarint())
	if r.Err() == nil && n > r.Len() {
		return nil, fmt.Errorf("search: corrupt sidecar: %d docs in %d bytes", n, r.Len())
	}
	docs := make(map[string]*doc, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		key := r.String()
		d := &doc{Kind: r.String(), URL: r.String(), Path: r.String()}
		ntok := int(r.Uvarint())
		if r.Err() == nil && ntok > r.Len() {
			return nil, fmt.Errorf("search: corrupt sidecar: %d tokens in %d bytes", ntok, r.Len())
		}
		d.Tokens = make([]string, 0, ntok)
		for j := 0; j < ntok && r.Err() == nil; j++ {
			d.Tokens = append(d.Tokens, r.String())
		}
		docs[key] = d
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("search: corrupt sidecar: %w", r.Err())
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("search: corrupt sidecar: %d trailing bytes", r.Len())
	}
	return docs, nil
}

// RecoverCheckpoint restores the index after a relational recovery.
// The sidecar is trusted only when it exists, decodes, no WAL tail
// transactions were replayed on top of the snapshot it was captured
// with, and its document count matches the restored content rows;
// any mismatch falls back to a full rebuild from the relational
// tables. A missing sidecar (nil) — the disk state a crash between
// the snapshot install and the sidecar install leaves behind — always
// rebuilds. Every index maintenance path runs as a commit-atomic hook
// (relstore.ApplyThen/CommitThen), so a capture can never observe a
// committed-but-unindexed write; the count check is defense in depth
// against sidecars from foreign or hand-edited directories.
func (ix *Index) RecoverCheckpoint(sidecar []byte, rel *relstore.DB, tailApplied int) error {
	if sidecar != nil && tailApplied == 0 {
		if docs, err := decodeSidecar(sidecar); err == nil {
			if len(docs) == contentRows(rel) {
				ix.install(docs)
				return nil
			}
		}
	}
	return ix.Rebuild(rel)
}

// contentRows counts the relational rows the index mirrors (-1 on a
// store without the schema, which never matches a sidecar).
func contentRows(rel *relstore.DB) int {
	total := 0
	for _, table := range []string{schema.TableScripts, schema.TableHTMLFiles, schema.TableProgFiles} {
		n, err := rel.Count(table)
		if err != nil {
			return -1
		}
		total += n
	}
	return total
}

// install replaces the index contents with restored documents,
// re-deriving the postings from the token streams.
func (ix *Index) install(docs map[string]*doc) {
	ix.mu.Lock()
	ix.docs = make(map[string]*doc)
	ix.post = make(map[string]map[string][]int32)
	ix.byURL = make(map[string]map[string]bool)
	ix.mu.Unlock()
	for _, d := range docs {
		ix.add(d.Kind, d.URL, d.Path, d.Tokens)
	}
}

// Rebuild re-derives the whole index from the relational content
// tables: every script's catalog metadata, every HTML file's visible
// text and every program source.
func (ix *Index) Rebuild(rel *relstore.DB) error {
	ix.install(nil)
	err := rel.Scan(schema.TableScripts, func(r relstore.Row) bool {
		name, _ := r["script_name"].(string)
		desc, _ := r["description"].(string)
		author, _ := r["author"].(string)
		kw, _ := r["keywords"].(string)
		ix.IndexScript(name, desc, author, schema.SplitList(kw))
		return true
	})
	if err != nil {
		return fmt.Errorf("search: rebuilding from scripts: %w", err)
	}
	err = rel.Scan(schema.TableHTMLFiles, func(r relstore.Row) bool {
		url, _ := r["starting_url"].(string)
		path, _ := r["path"].(string)
		content, _ := r["content"].([]byte)
		ix.IndexHTML(url, path, content)
		return true
	})
	if err != nil {
		return fmt.Errorf("search: rebuilding from html files: %w", err)
	}
	err = rel.Scan(schema.TableProgFiles, func(r relstore.Row) bool {
		url, _ := r["starting_url"].(string)
		path, _ := r["path"].(string)
		lang, _ := r["language"].(string)
		content, _ := r["content"].([]byte)
		ix.IndexProgram(url, path, lang, content)
		return true
	})
	if err != nil {
		return fmt.Errorf("search: rebuilding from program files: %w", err)
	}
	return nil
}

// Attach builds a content index over a document store: the index is
// seeded from whatever content the store already holds, then docdb
// keeps it current through its write hooks, persists it beside every
// checkpoint and recovers it (sidecar or rebuild) on restart. Attach
// before the store serves traffic and before Recover, so a recovery
// can restore the index alongside the rows.
func Attach(store *docdb.Store) (*Index, error) {
	ix := NewIndex()
	if err := ix.Rebuild(store.Rel()); err != nil {
		return nil, err
	}
	if err := store.SetContentIndex(ix); err != nil {
		return nil, err
	}
	return ix, nil
}
