package obs

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// exactQuantile is the nearest-rank quantile over the full sample set,
// the definition loadgen uses for its exact per-op percentiles.
func exactQuantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every bucket boundary must map into its own bucket, and bucket
	// lows must be monotonically increasing.
	prev := uint64(0)
	for i := 0; i < numBuckets; i++ {
		low := bucketLow(i)
		if i > 0 && low <= prev {
			t.Fatalf("bucket %d low %d not increasing past %d", i, low, prev)
		}
		prev = low
		if got := bucketIndex(low); got != i {
			t.Fatalf("bucketIndex(bucketLow(%d)=%d) = %d", i, low, got)
		}
		mid := bucketMid(i)
		if got := bucketIndex(mid); got != i {
			t.Fatalf("bucketIndex(bucketMid(%d)=%d) = %d", i, mid, got)
		}
	}
	if got := bucketIndex(^uint64(0)); got != numBuckets-1 {
		t.Fatalf("max value bucket = %d, want %d", got, numBuckets-1)
	}
}

// TestQuantileDifferential drives randomized latency distributions
// through the histogram and checks its quantiles against the exact
// nearest-rank answer from the retained samples. The log-linear
// buckets guarantee at most 1/16 relative error.
func TestQuantileDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := []struct {
		name string
		gen  func() time.Duration
	}{
		{"uniform-us", func() time.Duration { return time.Duration(rng.Intn(1_000_000)) }},
		{"exp-ms", func() time.Duration { return time.Duration(rng.ExpFloat64() * float64(5*time.Millisecond)) }},
		{"bimodal", func() time.Duration {
			if rng.Intn(10) == 0 {
				return time.Duration(50+rng.Intn(200)) * time.Millisecond
			}
			return time.Duration(100+rng.Intn(900)) * time.Microsecond
		}},
		{"tiny", func() time.Duration { return time.Duration(rng.Intn(20)) }},
	}
	for _, dist := range distributions {
		for trial := 0; trial < 5; trial++ {
			h := newHistogram()
			n := 100 + rng.Intn(5000)
			samples := make([]time.Duration, n)
			for i := range samples {
				samples[i] = dist.gen()
				h.Record(samples[i], false)
			}
			snap := h.Snapshot()
			if snap.Count != uint64(n) {
				t.Fatalf("%s: snapshot count %d want %d", dist.name, snap.Count, n)
			}
			for _, q := range []float64{0.50, 0.90, 0.95, 0.99, 1.0} {
				got := snap.Quantile(q)
				want := exactQuantile(samples, q)
				tol := want/16 + 1
				diff := got - want
				if diff < 0 {
					diff = -diff
				}
				if diff > tol {
					t.Errorf("%s trial %d: q%.2f = %v, exact %v, |diff| %v > tol %v",
						dist.name, trial, q, got, want, diff, tol)
				}
			}
		}
	}
}

// TestMergeDifferential merges per-"station" histograms and checks the
// merged quantiles against the exact answer over the pooled samples —
// the federation-wide aggregation path.
func TestMergeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		var all []time.Duration
		var merged HistSnapshot
		stations := 2 + rng.Intn(6)
		for s := 0; s < stations; s++ {
			h := newHistogram()
			n := rng.Intn(2000)
			for i := 0; i < n; i++ {
				d := time.Duration(rng.Intn(10_000_000))
				all = append(all, d)
				h.Record(d, rng.Intn(50) == 0)
			}
			merged.Merge(h.Snapshot())
		}
		if merged.Count != uint64(len(all)) {
			t.Fatalf("merged count %d want %d", merged.Count, len(all))
		}
		// Merged bucket list must stay sorted and deduplicated.
		for i := 1; i < len(merged.Buckets); i++ {
			if merged.Buckets[i].Bucket <= merged.Buckets[i-1].Bucket {
				t.Fatalf("merged buckets not strictly ascending at %d", i)
			}
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			got := merged.Quantile(q)
			want := exactQuantile(all, q)
			tol := want/16 + 1
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			if diff > tol {
				t.Errorf("trial %d: merged q%.2f = %v, exact %v over %d samples", trial, q, got, want, len(all))
			}
		}
	}
}

func TestSummaryAndTop(t *testing.T) {
	var m Metrics
	m.Observe("Fabric.Push", 10*time.Millisecond, false)
	m.Observe("Fabric.Push", 30*time.Millisecond, true)
	m.Observe("Node.Ping", time.Millisecond, false)
	sums := m.Summaries()
	push := sums["Fabric.Push"]
	if push.Count != 2 || push.Errors != 1 {
		t.Fatalf("push summary = %+v", push)
	}
	if push.MaxMs < 29 || push.MaxMs > 31 {
		t.Fatalf("push max = %v", push.MaxMs)
	}
	if push.MeanMs < 18 || push.MeanMs > 22 {
		t.Fatalf("push mean = %v", push.MeanMs)
	}
	if order := MethodsByTotal(sums); len(order) != 2 || order[0] != "Fabric.Push" {
		t.Fatalf("top order = %v", order)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(g*1000+i), i%17 == 0)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if snap := h.Snapshot(); snap.Count != 8000 {
		t.Fatalf("count %d want 8000", snap.Count)
	}
}
