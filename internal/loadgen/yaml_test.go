package loadgen

import (
	"reflect"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *yamlNode {
	t.Helper()
	n, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return n
}

func TestYAMLScalarsAndNesting(t *testing.T) {
	n := mustParse(t, `
name: demo            # trailing comment
seed: 42
empty:
quoted: "a: b # c"
fabric:
  stations: 7
  m: 3
`)
	if got := n.get("name").scalar; got != "demo" {
		t.Errorf("name = %q", got)
	}
	if got := n.get("quoted").scalar; got != "a: b # c" {
		t.Errorf("quoted = %q", got)
	}
	if got := n.get("empty").scalar; got != "" {
		t.Errorf("empty = %q", got)
	}
	f := n.get("fabric")
	if f == nil || f.kind != yamlMap {
		t.Fatalf("fabric: not a mapping")
	}
	if got := f.get("stations").scalar; got != "7" {
		t.Errorf("fabric.stations = %q", got)
	}
	if !reflect.DeepEqual(n.keys, []string{"name", "seed", "empty", "quoted", "fabric"}) {
		t.Errorf("key order = %v", n.keys)
	}
}

func TestYAMLSequences(t *testing.T) {
	n := mustParse(t, `
plain:
  - alpha
  - beta
maps:
  - op: broadcast
    rate: 1.5
  - op: search
    nested:
      top-k: 10
`)
	plain := n.get("plain")
	if plain.kind != yamlList || len(plain.items) != 2 || plain.items[1].scalar != "beta" {
		t.Fatalf("plain = %+v", plain)
	}
	maps := n.get("maps")
	if maps.kind != yamlList || len(maps.items) != 2 {
		t.Fatalf("maps: %d items", len(maps.items))
	}
	if got := maps.items[0].get("rate").scalar; got != "1.5" {
		t.Errorf("maps[0].rate = %q", got)
	}
	if got := maps.items[1].get("nested").get("top-k").scalar; got != "10" {
		t.Errorf("maps[1].nested.top-k = %q", got)
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"tab", "a:\tb", "tabs"},
		{"dup", "a: 1\na: 2", "duplicate key"},
		{"nospace", "a:1", "missing space"},
		{"badindent", "a: 1\n   b: 2", "unexpected indent"},
		{"seqinmap", "a: 1\n- b", "sequence item inside a mapping"},
		{"nokey", "just a scalar line", "expected 'key: value'"},
		{"empty", "  \n# only comments\n", "empty document"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseYAML([]byte(c.src))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

// TestYAMLRoundTrip pins encode(parse(x)) == encode(parse(encode(parse(x)))):
// the encoder emits the subset the parser reads, with structure and
// key order intact.
func TestYAMLRoundTrip(t *testing.T) {
	src := `
name: round-trip
seed: 7
fabric:
  stations: 3
  m: 3
phases:
  - name: a
    op: broadcast
    rate: 0.5
  - name: b
    op: search
    terms:
      - lecture
      - material
slos:
  - op: broadcast
    p95: 2s
`
	first := mustParse(t, src)
	encoded := encodeYAML(first)
	second, err := parseYAML(encoded)
	if err != nil {
		t.Fatalf("reparse: %v\nencoded:\n%s", err, encoded)
	}
	if !reflect.DeepEqual(stripLines(first), stripLines(second)) {
		t.Errorf("round trip changed the document\nfirst:\n%s\nsecond:\n%s",
			encoded, encodeYAML(second))
	}
}

// stripLines clears source-line fields so structural comparison
// ignores where nodes came from.
func stripLines(n *yamlNode) *yamlNode {
	out := &yamlNode{kind: n.kind, scalar: n.scalar, keys: n.keys}
	if n.fields != nil {
		out.fields = make(map[string]*yamlNode, len(n.fields))
		for k, v := range n.fields {
			out.fields[k] = stripLines(v)
		}
	}
	for _, item := range n.items {
		out.items = append(out.items, stripLines(item))
	}
	return out
}
