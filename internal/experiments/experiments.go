// Package experiments regenerates the quantitative claims of the paper
// as tables (E1–E10 in DESIGN.md). The paper itself publishes no
// numeric tables or figures — its evaluation content is the pair of
// m-ary placement equations plus qualitative claims about
// pre-broadcast, BLOB sharing, watermark replication, buffer-space
// migration, locking and the virtual library — so each experiment here
// measures one of those claims under the controlled simulator and
// prints the table the paper would have carried.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's result, renderable as aligned text.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table for terminals and EXPERIMENTS.md.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, h := range t.Header {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], h)
	}
	sb.WriteByte('\n')
	for i := range t.Header {
		sb.WriteString(strings.Repeat("-", widths[i]))
		sb.WriteString("  ")
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Scale selects experiment sizes: Small keeps unit tests fast, Full is
// what mmubench and EXPERIMENTS.md report.
type Scale int

// Scales.
const (
	Small Scale = iota
	Full
)

// seconds renders a duration as fractional seconds.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// mb renders bytes as mebibytes.
func mb(b int64) string {
	return fmt.Sprintf("%.2f", float64(b)/(1<<20))
}

// All runs every experiment at the given scale, in order.
func All(scale Scale) ([]*Table, error) {
	runners := []func(Scale) (*Table, error){
		E1BroadcastTree,
		E2Preload,
		E3BlobSharing,
		E4Watermark,
		E5Migration,
		E6Locking,
		E7Integrity,
		E8Search,
		E9Formulas,
		E10AdaptiveM,
		E11Pipelining,
	}
	out := make([]*Table, 0, len(runners))
	for _, run := range runners {
		t, err := run(scale)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ByID returns the runner for one experiment id (e.g. "e4").
func ByID(id string) (func(Scale) (*Table, error), bool) {
	switch strings.ToLower(id) {
	case "e1":
		return E1BroadcastTree, true
	case "e2":
		return E2Preload, true
	case "e3":
		return E3BlobSharing, true
	case "e4":
		return E4Watermark, true
	case "e5":
		return E5Migration, true
	case "e6":
		return E6Locking, true
	case "e7":
		return E7Integrity, true
	case "e8":
		return E8Search, true
	case "e9":
		return E9Formulas, true
	case "e10":
		return E10AdaptiveM, true
	case "e11":
		return E11Pipelining, true
	default:
		return nil, false
	}
}
