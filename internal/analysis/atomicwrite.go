package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicWrite enforces the durability rule PR 4 was built on: files
// that must survive a crash go through internal/atomicio's
// temp-then-rename, never a raw in-place write. os.Create and
// os.WriteFile truncate the destination before the new bytes are
// safe, so a crash mid-write destroys the only copy; a bare os.Rename
// outside atomicio is usually the install half of a hand-rolled
// temp-then-rename that forgot the fsync (or an unchecked archival
// move). Writers with a genuine reason — appending logs use
// os.OpenFile and are out of scope; archival renames of files that
// are not the sole copy can carry a //lint:ignore atomicwrite with
// that argument.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "durable files must go through internal/atomicio, not raw os.Create/os.WriteFile/os.Rename",
	Run:  runAtomicWrite,
}

var atomicWriteBanned = map[string]string{
	"Create":    "truncates the destination in place — a crash mid-write destroys the previous copy; write through internal/atomicio.WriteFile",
	"WriteFile": "truncates the destination in place — a crash mid-write leaves a torn file; write through internal/atomicio.WriteFile",
	"Rename":    "installs a file outside internal/atomicio's fsync-then-rename protocol; use atomicio.WriteFile, or annotate why this move cannot lose data",
}

func runAtomicWrite(p *Pass) {
	if p.Pkg.Name() == "atomicio" {
		return // the one place allowed to speak to os directly
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			reason, banned := atomicWriteBanned[sel.Sel.Name]
			if !banned {
				return true
			}
			fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			p.Reportf(call.Pos(), "os.%s %s", sel.Sel.Name, reason)
			return true
		})
	}
}
