GO ?= go

# The targets below are exactly what .github/workflows/ci.yml runs, so a
# green `make ci` locally means a green CI run.

.PHONY: build vet fmt-check test race race-fabric bench bench-check ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/relstore/... ./internal/docdb/...

# The live distribution layer under the race detector: the in-process
# multi-station fabric, the station RPC node and the pooled transport.
race-fabric:
	$(GO) test -race ./internal/fabric/... ./internal/cluster/... ./internal/transport/...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One iteration of every benchmark in every package, so benchmark code
# cannot rot without CI noticing.
bench-check:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

ci: build vet fmt-check test race race-fabric bench-check
