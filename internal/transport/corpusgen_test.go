//go:build corpusgen

package transport

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteCorpus regenerates the committed fuzz seed corpora. Run with
//
//	go test -tags corpusgen -run TestWriteCorpus ./internal/transport/
//
// after changing the frame codec or the fuzz target signatures.
func TestWriteCorpus(t *testing.T) {
	writeSeed := func(target, name, content string) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw := func(data []byte) string {
		return fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	}

	// FuzzReadFrame: raw byte streams.
	readSeeds := map[string][]byte{
		"ping":           frameBytes(t, &envelope{ID: 1, Method: "Ping"}),
		"push_payload":   frameBytes(t, &envelope{ID: 7, Method: "Fabric.Push", Body: bytes.Repeat([]byte{0xAB}, 512)}),
		"error_response": frameBytes(t, &envelope{ID: 9, IsResp: true, Err: "no such method"}),
		"traced_call":    frameBytes(t, &envelope{ID: 3, Method: "Fabric.Search", TraceID: 0xDEADBEEF, Parent: 42}),
		"stream_chunk":   frameBytes(t, &envelope{ID: 4, IsResp: true, More: true, Body: []byte("chunk")}),
		"legacy_gob":     legacyFrameBytes(t, &envelope{ID: 11, Method: "Fabric.Resolve", Body: []byte("legacy"), TraceID: 5}),
		"empty":          {},
		"short_header":   {0x00},
		"zero_length":    {0x00, 0x00, 0x00, 0x00},
		"giant_length":   {0xFF, 0xFF, 0xFF, 0xFF},
		"over_max":       {0x7F, 0xFF, 0xFF, 0xFF},
		"lying_length":   {0x00, 0x00, 0x00, 0x10, 1, 2},
	}
	corruptTrailer := frameBytes(t, &envelope{ID: 3, Method: "SQL", Body: []byte("x")})
	corruptTrailer[len(corruptTrailer)-1] ^= 0xFF
	readSeeds["corrupt_trailer"] = corruptTrailer
	corruptBody := frameBytes(t, &envelope{ID: 8, Method: "Fabric.Push", Body: bytes.Repeat([]byte{0x33}, 64)})
	corruptBody[len(corruptBody)/2] ^= 0x01
	readSeeds["corrupt_body"] = corruptBody
	corruptGob := legacyFrameBytes(t, &envelope{ID: 2, Method: "Ping"})
	corruptGob[len(corruptGob)-2] ^= 0xFF
	readSeeds["corrupt_gob"] = corruptGob
	for name, data := range readSeeds {
		writeSeed("FuzzReadFrame", name, raw(data))
	}

	// FuzzFrameRoundTrip: typed argument tuples matching the target
	// signature (id, method, isResp, err, body, traceID, parent, more).
	tuple := func(id uint64, method string, isResp bool, errStr string, body []byte, traceID, parent uint64, more bool) string {
		return fmt.Sprintf("go test fuzz v1\nuint64(%d)\nstring(%q)\nbool(%v)\nstring(%q)\n[]byte(%q)\nuint64(%d)\nuint64(%d)\nbool(%v)\n",
			id, method, isResp, errStr, body, traceID, parent, more)
	}
	writeSeed("FuzzFrameRoundTrip", "ping", tuple(1, "Ping", false, "", nil, 0, 0, false))
	writeSeed("FuzzFrameRoundTrip", "big_id", tuple(1<<63, "Fabric.Resolve", true, "fabric: no station on the parent route holds an instance", []byte("bundle"), 0, 0, false))
	writeSeed("FuzzFrameRoundTrip", "zero_body", tuple(0, "", false, "", bytes.Repeat([]byte{0}, 4096), 0, 0, true))
	writeSeed("FuzzFrameRoundTrip", "wild_bytes", tuple(42, "a method name with spaces \x00 and bytes", true, "err", []byte{0xDE, 0xAD}, 7, 3, false))
	writeSeed("FuzzFrameRoundTrip", "traced_stream", tuple(5, "Fabric.Search", false, "", []byte("q"), 1<<62, 1<<61, true))
}
