package cluster

import (
	"repro/internal/obs"
	"repro/internal/search"
)

// The unified Stats RPC: one scrape returns everything an operator or
// a load harness needs to judge a station — per-RPC-method operation
// counters and wire bytes (from the transport server), relational and
// document sizes, the WAL/checkpoint generation and tail, BLOB store
// accounting and the content index's dimensions. It replaces the
// ad-hoc probing that stitched Ping, Checkpoint and SQL row counts
// together to answer "what is this station doing".

// StatsReply is one station's accounting snapshot.
type StatsReply struct {
	Pos int

	// Wire activity since the station started serving.
	Ops      map[string]int64 // requests served, per RPC method
	BytesIn  int64            // bytes received on the station socket
	BytesOut int64            // bytes sent on the station socket

	// Per-method latency digests from the station's histograms
	// (p50/p95/p99/max/mean, error counts). Empty when observability
	// is disabled on the node.
	Latency map[string]obs.Summary

	// Event journal accounting: total admissions per category since
	// the station started (counts survive ring eviction) and the
	// journal's latest sequence number — the cursor an Events RPC
	// poller resumes from. Empty/zero when observability is disabled.
	Events   map[string]int64
	EventSeq uint64

	// Relational engine and durability.
	Tables        int
	Objects       int64  // doc_objects rows
	CheckpointGen uint64 // newest installed checkpoint generation (0 = none)
	WALSeq        uint64 // last appended WAL sequence number
	WALTailBytes  int64  // bytes in the WAL tail since that generation
	Durable       bool   // station runs with a durability directory

	// BLOB store.
	BlobObjects   int
	PhysicalBytes int64
	LogicalBytes  int64

	// Content index ("" dimensions stay zero when none is attached).
	Indexed       bool
	IndexDocs     int
	IndexTerms    int
	IndexPostings int
}

// handleStats gathers the unified station snapshot.
func (n *Node) handleStats(decode func(any) error) (any, error) {
	var req struct{}
	if err := decode(&req); err != nil {
		return nil, err
	}
	return n.StatsNow(), nil
}

// StatsNow assembles the station's current Stats snapshot locally —
// the same value the Stats RPC serves, usable in-process by the
// daemon and the tests.
func (n *Node) StatsNow() StatsReply {
	rel := n.Store.Rel()
	srv := n.srv.Stats()
	reply := StatsReply{
		Pos:           n.Pos(),
		Ops:           srv.Calls,
		BytesIn:       srv.BytesIn,
		BytesOut:      srv.BytesOut,
		Tables:        len(rel.Tables()),
		CheckpointGen: rel.Generation(),
		WALSeq:        rel.LastSeq(),
		WALTailBytes:  rel.WALTailBytes(),
		Durable:       n.Store.DurableDir() != "",
	}
	if o := n.Observer(); o != nil {
		reply.Latency = o.Metrics.Summaries()
		reply.Events = o.EventCounts()
		reply.EventSeq = o.EventSeq()
	}
	if count, err := rel.Count("doc_objects"); err == nil {
		reply.Objects = int64(count)
	}
	bs := n.Store.Blobs().Stats()
	reply.BlobObjects = bs.Objects
	reply.PhysicalBytes = bs.PhysicalBytes
	reply.LogicalBytes = bs.LogicalBytes
	if ix, ok := n.Store.ContentIndex().(*search.Index); ok && ix != nil {
		st := ix.Stats()
		reply.Indexed = true
		reply.IndexDocs = st.Docs
		reply.IndexTerms = st.Terms
		reply.IndexPostings = st.Postings
	}
	return reply
}

// Stats scrapes the station's unified accounting snapshot.
func (r *RemoteStation) Stats() (StatsReply, error) {
	var reply StatsReply
	err := r.c.Call("Stats", struct{}{}, &reply)
	return reply, err
}
