// Package webui is the Web-savvy interface of the paper's virtual
// library (section 5): "the searching and retrieve processes are
// running under a standard Web browser." It serves plain HTML over
// net/http: the catalog, a search form over keywords / instructor /
// course number — plus a full-text mode over the station's content
// index and a federated mode that scatter-gathers the whole
// distribution fabric — document pages with their files and media, and
// check-out / check-in actions whose ledger feeds assessment.
package webui

import (
	"fmt"
	"html"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"repro/internal/docdb"
	"repro/internal/library"
	"repro/internal/obs"
	"repro/internal/search"
)

// Server renders the virtual library over HTTP.
type Server struct {
	Library *library.Library
	Store   *docdb.Store
	// Searcher answers local full-text queries (the station's content
	// index); nil hides the full-text mode.
	Searcher search.Searcher
	// Federated answers federation-wide full-text queries through the
	// distribution fabric; nil hides the federated mode.
	Federated func(q search.Query) ([]search.Hit, error)
	// Observer is the station's observability state; nil renders the
	// /debug page as disabled.
	Observer *obs.Observer
	mux      *http.ServeMux
}

// New wires the handler tree.
func New(lib *library.Library, store *docdb.Store) *Server {
	s := &Server{Library: lib, Store: store, mux: http.NewServeMux()}
	// The station's content index doubles as the default local
	// full-text searcher when one is attached.
	if ix, ok := store.ContentIndex().(search.Searcher); ok {
		s.Searcher = ix
	}
	s.mux.HandleFunc("/", s.handleHome)
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/doc/", s.handleDoc)
	s.mux.HandleFunc("/checkout", s.handleCheckout)
	s.mux.HandleFunc("/checkin", s.handleCheckin)
	s.mux.HandleFunc("/assess", s.handleAssess)
	s.mux.HandleFunc("/debug", s.handleDebug)
	return s
}

// handleDebug renders the station's observability snapshot: the
// slowest recent root spans (traced operations that started here, with
// the trace IDs `webdocctl trace` takes) and the per-method latency
// digests from the station's histograms.
func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	s.page(w, "Station diagnostics", func(sb *strings.Builder) {
		if s.Observer == nil {
			sb.WriteString("<p>Observability is disabled on this station.</p>\n")
			return
		}
		roots := make([]obs.Span, 0, 32)
		for _, sp := range s.Observer.RecentSpans(obs.DefaultSpanCap) {
			if sp.Parent == 0 {
				roots = append(roots, sp)
			}
		}
		sort.Slice(roots, func(i, j int) bool { return roots[i].Duration > roots[j].Duration })
		if len(roots) > 20 {
			roots = roots[:20]
		}
		sb.WriteString("<h2>Recent slow traces</h2>\n")
		if len(roots) == 0 {
			sb.WriteString("<p>No traced operations recorded yet.</p>\n")
		} else {
			sb.WriteString("<table border=1 cellpadding=4><tr><th>trace</th><th>method</th><th>station</th><th>duration</th><th>bytes</th><th>error</th><th>notes</th></tr>\n")
			for _, sp := range roots {
				fmt.Fprintf(sb, "<tr><td><code>%s</code></td><td>%s</td><td>%d</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td></tr>\n",
					obs.FormatTraceID(sp.TraceID), html.EscapeString(sp.Method), sp.Station,
					sp.Duration.Round(10*time.Microsecond), sp.Bytes,
					html.EscapeString(sp.Err), html.EscapeString(strings.Join(sp.Notes, "; ")))
			}
			sb.WriteString("</table>\n<p>Reconstruct a trace fabric-wide with <code>webdocctl trace &lt;id&gt;</code>.</p>\n")
		}
		sums := s.Observer.Metrics.Summaries()
		sb.WriteString("<h2>Per-method latency</h2>\n")
		if len(sums) == 0 {
			sb.WriteString("<p>No RPCs served yet.</p>\n")
			return
		}
		sb.WriteString("<table border=1 cellpadding=4><tr><th>method</th><th>count</th><th>errors</th><th>p50 ms</th><th>p95 ms</th><th>p99 ms</th><th>max ms</th><th>total ms</th></tr>\n")
		for _, method := range obs.MethodsByTotal(sums) {
			sum := sums[method]
			fmt.Fprintf(sb, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%.1f</td></tr>\n",
				html.EscapeString(method), sum.Count, sum.Errors,
				sum.P50Ms, sum.P95Ms, sum.P99Ms, sum.MaxMs, sum.TotalMs)
		}
		sb.WriteString("</table>\n")
		events := s.Observer.Events(obs.EventFilter{})
		// Newest first, capped: the journal is the station's local
		// incident record; the fabric-wide merge is webdocctl events.
		for i, j := 0, len(events)-1; i < j; i, j = i+1, j-1 {
			events[i], events[j] = events[j], events[i]
		}
		if len(events) > 30 {
			events = events[:30]
		}
		sb.WriteString("<h2>Recent events</h2>\n")
		if len(events) == 0 {
			sb.WriteString("<p>No journal events recorded yet.</p>\n")
			return
		}
		sb.WriteString("<table border=1 cellpadding=4><tr><th>time</th><th>seq</th><th>severity</th><th>category</th><th>event</th><th>trace</th></tr>\n")
		for _, e := range events {
			trace := ""
			if e.TraceID != 0 {
				trace = obs.FormatTraceID(e.TraceID)
			}
			fmt.Fprintf(sb, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td><code>%s</code></td><td><code>%s</code></td></tr>\n",
				e.Time.Format("15:04:05.000"), e.Seq, e.Severity, html.EscapeString(e.Category),
				html.EscapeString(e.Line()), trace)
		}
		sb.WriteString("</table>\n<p>Merge the fabric-wide timeline with <code>webdocctl events</code>.</p>\n")
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// docHref builds a safe href to a document page: the script name is
// path-escaped (so separators and query metacharacters survive the
// round trip) and then HTML-escaped for the attribute context.
func docHref(scriptName string) string {
	return "/doc/" + html.EscapeString(url.PathEscape(scriptName))
}

func (s *Server) page(w http.ResponseWriter, title string, body func(*strings.Builder)) {
	var sb strings.Builder
	sb.WriteString("<html><head><title>")
	sb.WriteString(html.EscapeString(title))
	sb.WriteString("</title></head><body>\n<h1>")
	sb.WriteString(html.EscapeString(title))
	sb.WriteString("</h1>\n")
	body(&sb)
	sb.WriteString(`<hr><p><a href="/">catalog</a> — MMU Web document virtual library</p></body></html>`)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, sb.String())
}

// searchForm renders the query form shared by the home and results
// pages. The mode selector offers full-text and federated search only
// when the server has the corresponding backend.
func (s *Server) searchForm(sb *strings.Builder, mode string, phrase bool) {
	sb.WriteString(`<form action="/search" method="GET">
keywords <input name="kw">
instructor <input name="instructor">
course <input name="course">
<select name="mode">`)
	modes := [][2]string{{"catalog", "catalog metadata"}}
	if s.Searcher != nil {
		modes = append(modes, [2]string{"content", "full text (this station)"})
	}
	if s.Federated != nil {
		modes = append(modes, [2]string{"federated", "full text (whole federation)"})
	}
	for _, m := range modes {
		sel := ""
		if m[0] == mode {
			sel = " selected"
		}
		fmt.Fprintf(sb, `<option value="%s"%s>%s</option>`, m[0], sel, m[1])
	}
	sb.WriteString("</select>")
	if s.Searcher != nil || s.Federated != nil {
		checked := ""
		if phrase {
			checked = " checked"
		}
		fmt.Fprintf(sb, `
exact phrase <input type="checkbox" name="phrase" value="1"%s>`, checked)
	}
	sb.WriteString(`
<input type="submit" value="Search">
</form>`)
}

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.page(w, "Virtual course library", func(sb *strings.Builder) {
		s.searchForm(sb, "catalog", false)
		sb.WriteString(`<h2>Catalog</h2><ul>`)
		for _, e := range s.Library.Catalog() {
			fmt.Fprintf(sb, `<li><a href="%s">%s</a> — %s (%s, %s)</li>`,
				docHref(e.ScriptName), html.EscapeString(e.ScriptName),
				html.EscapeString(e.Title), html.EscapeString(e.CourseNumber),
				html.EscapeString(e.Instructor))
		}
		sb.WriteString("</ul>")
	})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	mode := r.URL.Query().Get("mode")
	kw := strings.Fields(strings.TrimSpace(r.URL.Query().Get("kw")))
	switch mode {
	case "content", "federated":
		s.handleFullText(w, r, mode, kw)
		return
	}
	q := library.Query{
		Instructor: r.URL.Query().Get("instructor"),
		Course:     r.URL.Query().Get("course"),
		Keywords:   kw,
	}
	hits := s.Library.Search(q)
	s.page(w, "Search results", func(sb *strings.Builder) {
		s.searchForm(sb, "catalog", false)
		fmt.Fprintf(sb, "<p>%d hit(s)</p><ol>", len(hits))
		for _, h := range hits {
			fmt.Fprintf(sb, `<li><a href="%s">%s</a> — %s (score %d)</li>`,
				docHref(h.Entry.ScriptName), html.EscapeString(h.Entry.ScriptName),
				html.EscapeString(h.Entry.Title), h.Score)
		}
		sb.WriteString("</ol>")
	})
}

// handleFullText serves the content and federated search modes: ranked
// hits with extracted snippets, each station-stamped in federated
// mode.
func (s *Server) handleFullText(w http.ResponseWriter, r *http.Request, mode string, terms []string) {
	q := search.Query{Terms: terms, Phrase: r.URL.Query().Get("phrase") != ""}
	var hits []search.Hit
	var err error
	switch mode {
	case "federated":
		if s.Federated == nil {
			http.Error(w, "no distribution fabric attached", http.StatusNotFound)
			return
		}
		hits, err = s.Federated(q)
	default:
		if s.Searcher == nil {
			http.Error(w, "no content index attached", http.StatusNotFound)
			return
		}
		hits = s.Searcher.Search(q)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	title := "Full-text results"
	if mode == "federated" {
		title = "Federated full-text results"
	}
	s.page(w, title, func(sb *strings.Builder) {
		s.searchForm(sb, mode, q.Phrase)
		fmt.Fprintf(sb, "<p>%d hit(s)</p><ol>", len(hits))
		for _, h := range hits {
			where := ""
			if h.Station > 0 {
				where = fmt.Sprintf(" @station %d", h.Station)
			}
			switch h.Kind {
			case search.KindScript:
				fmt.Fprintf(sb, `<li><a href="%s">%s</a> <em>catalog</em>%s`,
					docHref(h.Path), html.EscapeString(h.Path), html.EscapeString(where))
			default:
				fmt.Fprintf(sb, `<li>%s <code>%s</code> <em>%s</em>%s`,
					html.EscapeString(h.URL), html.EscapeString(h.Path),
					html.EscapeString(h.Kind), html.EscapeString(where))
			}
			if h.Snippet != "" {
				fmt.Fprintf(sb, `<br>&hellip; %s &hellip;`, html.EscapeString(h.Snippet))
			}
			sb.WriteString("</li>")
		}
		sb.WriteString("</ol>")
	})
}

func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	// The link side path-escapes script names, so decode from the raw
	// escaped path: a name containing '/' or '?' must arrive intact.
	name, err := url.PathUnescape(strings.TrimPrefix(r.URL.EscapedPath(), "/doc/"))
	if err != nil {
		http.NotFound(w, r)
		return
	}
	sc, err := s.Store.Script(name)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	impls, err := s.Store.Implementations(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.page(w, "Course "+name, func(sb *strings.Builder) {
		fmt.Fprintf(sb, "<p>%s — by %s; keywords: %s</p>",
			html.EscapeString(sc.Description), html.EscapeString(sc.Author),
			html.EscapeString(strings.Join(sc.Keywords, ", ")))
		fmt.Fprintf(sb, `<form action="/checkout" method="POST">
<input type="hidden" name="doc" value="%s">
student <input name="student">
<input type="submit" value="Check out">
</form>`, html.EscapeString(name))
		for _, im := range impls {
			fmt.Fprintf(sb, "<h2>Implementation %s</h2>", html.EscapeString(im.StartingURL))
			files, err := s.Store.HTMLFiles(im.StartingURL)
			if err == nil {
				sb.WriteString("<ul>")
				for _, f := range files {
					fmt.Fprintf(sb, "<li>%s (%d bytes)</li>", html.EscapeString(f.Path), len(f.Content))
				}
				sb.WriteString("</ul>")
			}
			media, err := s.Store.ImplMedia(im.StartingURL)
			if err == nil && len(media) > 0 {
				sb.WriteString("<p>media: ")
				for i, m := range media {
					if i > 0 {
						sb.WriteString(", ")
					}
					fmt.Fprintf(sb, "%s (%s, %d bytes)", html.EscapeString(m.Name), m.Kind, m.Ref.Size)
				}
				sb.WriteString("</p>")
			}
		}
	})
}

func (s *Server) handleCheckout(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	doc := r.FormValue("doc")
	student := r.FormValue("student")
	if doc == "" || student == "" {
		http.Error(w, "doc and student required", http.StatusBadRequest)
		return
	}
	id, err := s.Library.CheckOut(doc, student)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.page(w, "Checked out", func(sb *strings.Builder) {
		fmt.Fprintf(sb, `<p>%s checked out %s. Ticket: <code>%s</code></p>
<form action="/checkin" method="POST">
<input type="hidden" name="ticket" value="%s">
<input type="submit" value="Check in">
</form>`, html.EscapeString(student), html.EscapeString(doc), html.EscapeString(id), html.EscapeString(id))
	})
}

func (s *Server) handleCheckin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	ticket := r.FormValue("ticket")
	if err := s.Library.CheckIn(ticket); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.page(w, "Checked in", func(sb *strings.Builder) {
		fmt.Fprintf(sb, "<p>Ticket <code>%s</code> returned.</p>", html.EscapeString(ticket))
	})
}

func (s *Server) handleAssess(w http.ResponseWriter, r *http.Request) {
	student := r.URL.Query().Get("student")
	if student == "" {
		http.Error(w, "student required", http.StatusBadRequest)
		return
	}
	a, err := s.Library.Assess(student)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.page(w, "Assessment for "+student, func(sb *strings.Builder) {
		fmt.Fprintf(sb, `<table border="1">
<tr><th>checkouts</th><th>distinct documents</th><th>still out</th><th>reading time</th><th>score</th></tr>
<tr><td>%d</td><td>%d</td><td>%d</td><td>%v</td><td>%.1f</td></tr>
</table>`, a.Checkouts, a.DistinctDocs, a.Open, a.TotalDuration, a.Score)
	})
}
