GO ?= go

# The targets below are exactly what .github/workflows/ci.yml runs, so a
# green `make ci` locally means a green CI run.

.PHONY: build vet fmt-check lint test race race-fabric fuzz-smoke bench bench-check obs-overhead load-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Project linter: webdoclint type-checks every package and enforces
# the invariants go vet cannot see — atomic-write discipline, lock
# acquisition order, errors.Is over sentinel ==, trace propagation in
# handler scopes, route-around classification in tree fan-outs, and
# wire-tag encode/decode coverage. Zero dependencies; the only
# waivers are reasoned //lint:ignore comments.
lint:
	$(GO) run ./cmd/webdoclint ./...

test:
	$(GO) test ./...

# Besides the locking stress tests, this job carries the persistence
# crash matrix: checkpoint + WAL-tail recovery, kill-mid-checkpoint
# fallback, torn-tail replay, BLOB-sidecar generation coupling, and
# the content index's sidecar/rebuild recovery (missing, stale and
# corrupt search-<gen> files) plus its concurrent index/query stress.
# internal/obs rides along: its span ring, histogram and event
# journal ring are written to from every RPC goroutine, so the race
# detector is the proof they are safe to leave always-on.
# internal/wire, internal/blob and
# internal/loadgen joined the matrix with the binary codec and load
# harness work: codec buffers, blob generation handoff and the load
# recorder's per-worker rings all see concurrent writers.
race:
	$(GO) test -race ./internal/relstore/... ./internal/docdb/... ./internal/search/... ./internal/obs/... ./internal/wire/... ./internal/blob/... ./internal/loadgen/...

# The live distribution layer under the race detector: the in-process
# multi-station fabric (including the 13-station failure/repair run,
# the streamed catch-up parity tests and the scatter-gather search
# parity run with a killed interior station), the station RPC node,
# the pooled transport with chunked response streaming, and the
# subprocess crash tests (SIGKILL mid-broadcast + rejoin, SIGKILL
# after a checkpoint, SIGKILL before the search sidecar installs,
# legacy-WAL migration) against real webdocd processes.
race-fabric:
	$(GO) test -race ./internal/fabric/... ./internal/cluster/... ./internal/transport/... ./cmd/webdocd/...

# Ten seconds of coverage-guided fuzzing per target over the committed
# seed corpora: the minisql parser and the transport frame codec must
# reject hostile input with errors, never panics.
fuzz-smoke:
	$(GO) test ./internal/minisql -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 10s
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime 10s
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzFrameRoundTrip$$' -fuzztime 10s

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One iteration of every benchmark in every package, so benchmark code
# cannot rot without CI noticing.
bench-check:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Observability-overhead gate: the broadcast lecture cycle with
# observability on must stay within 5% of the same cycle with every
# observer disabled, and likewise with the event journal on versus
# disabled. CI runs the pairs at OBS_BENCHTIME=1x as a compile-and-run
# check (one socket-bound iteration is too noisy to judge 5%); raise
# OBS_BENCHTIME (e.g. 50x) locally or in a nightly job to measure the
# ratio for real.
OBS_BENCHTIME ?= 1x
obs-overhead:
	$(GO) test -run '^$$' -bench '^BenchmarkFabricBroadcast(Obs|Events)' -benchtime $(OBS_BENCHTIME) .

# A ~10-second compressed load run against a self-hosted 3-station
# fabric: webdocload replays examples/loadprofiles/ci-smoke.yaml and
# exits non-zero if any SLO fails. The report lands in
# BENCH_load_ci-smoke.json (uploaded as a CI artifact).
load-smoke:
	$(GO) run ./cmd/webdocload -profile examples/loadprofiles/ci-smoke.yaml

ci: build vet fmt-check lint test race race-fabric fuzz-smoke bench-check obs-overhead load-smoke
