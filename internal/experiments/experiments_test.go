package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parseSec pulls a float out of a table cell.
func parseSec(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestE1TreeBeatsChainAndStar(t *testing.T) {
	tab, err := E1BroadcastTree(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Collect per-N completion times by degree.
	times := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		n, m := row[0], row[1]
		if times[n] == nil {
			times[n] = map[string]float64{}
		}
		if row[2] != "-" {
			times[n][m] = parseSec(t, row[2])
		}
	}
	for n, byM := range times {
		chain := byM["1"]
		tree := byM["3"]
		star, ok := byM[n] // m = N-1 row is labeled with the number
		if !ok {
			// find the largest plain-integer degree
			for m, v := range byM {
				if m != "1" && m != "2" && m != "3" && m != "4" && m != "8" && m != "N-1 fair-share" {
					star = v
				}
			}
		}
		if tree >= chain {
			t.Errorf("N=%s: tree %.3f not faster than chain %.3f", n, tree, chain)
		}
		if star > 0 && tree >= star {
			t.Errorf("N=%s: tree %.3f not faster than star %.3f", n, tree, star)
		}
	}
	if !strings.Contains(tab.Render(), "E1") {
		t.Error("render missing id")
	}
}

func TestE2PreloadEliminatesStalls(t *testing.T) {
	tab, err := E2Preload(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	var pre, demand []string
	for _, row := range tab.Rows {
		if row[0] == "pre-broadcast" {
			pre = row
		} else {
			demand = row
		}
	}
	if pre[2] != "0" {
		t.Errorf("preloaded stalls = %s", pre[2])
	}
	if demand[2] == "0" {
		t.Error("on-demand playback had no stalls")
	}
	if parseSec(t, demand[3]) <= parseSec(t, pre[3]) {
		t.Errorf("on-demand stall time %s not above preloaded %s", demand[3], pre[3])
	}
}

func TestE3SharingFactorAboveOne(t *testing.T) {
	tab, err := E3BlobSharing(Small)
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	physical := parseSec(t, row[2])
	duplicated := parseSec(t, row[3])
	if duplicated <= physical {
		t.Errorf("duplicated %.2f not above physical %.2f", duplicated, physical)
	}
	factor := parseSec(t, row[4])
	if factor <= 1.5 {
		t.Errorf("sharing factor = %.2f, want > 1.5 under Zipf reuse", factor)
	}
}

func TestE4WatermarkShape(t *testing.T) {
	tab, err := E4Watermark(Small)
	if err != nil {
		t.Fatal(err)
	}
	byWM := map[string][]string{}
	for _, row := range tab.Rows {
		byWM[row[0]] = row
	}
	// Never-replicate keeps zero student disk but pays every fetch.
	never := byWM["-1"]
	eager := byWM["0"]
	if never[6] != "0.00" {
		t.Errorf("watermark -1 student disk = %s", never[6])
	}
	if eager[3] == "0" {
		t.Error("watermark 0 created no replicas")
	}
	// Replication reduces average latency relative to never-replicate.
	if parseSec(t, eager[4]) >= parseSec(t, never[4]) {
		t.Errorf("avg latency with replication %s not below %s", eager[4], never[4])
	}
	// Remote fetches shrink monotonically as watermark loosens from 3 to 0.
	if parseSec(t, byWM["0"][2]) > parseSec(t, byWM["3"][2]) {
		t.Errorf("remote fetches: wm0 %s > wm3 %s", byWM["0"][2], byWM["3"][2])
	}
}

func TestE5MigrationFreesBuffers(t *testing.T) {
	tab, err := E5Migration(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		peak := parseSec(t, row[1])
		after := parseSec(t, row[2])
		if peak <= 0 {
			t.Errorf("lecture %s peak = %.2f", row[0], peak)
		}
		if after != 0 {
			t.Errorf("lecture %s disk after migration = %.2f, want 0", row[0], after)
		}
	}
}

func TestE6HierarchicalBeatsGlobal(t *testing.T) {
	tab, err := E6Locking(Small)
	if err != nil {
		t.Fatal(err)
	}
	var hier, global float64
	for _, row := range tab.Rows {
		ops := parseSec(t, row[4])
		if strings.HasPrefix(row[0], "hierarchical") {
			hier = ops
		} else {
			global = ops
		}
	}
	if hier <= global {
		t.Errorf("hierarchical %.0f ops/s not above global %.0f", hier, global)
	}
}

func TestE7FanoutDecreasesDownTheHierarchy(t *testing.T) {
	tab, err := E7Integrity(Small)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]float64{}
	for _, row := range tab.Rows {
		counts[row[0]] = parseSec(t, row[1])
	}
	if counts["script"] <= counts["implementation"] {
		t.Errorf("script fan-out %.0f should exceed implementation %.0f",
			counts["script"], counts["implementation"])
	}
	if counts["implementation"] <= counts["test_record"] {
		t.Errorf("implementation fan-out %.0f should exceed test record %.0f",
			counts["implementation"], counts["test_record"])
	}
}

func TestE8IndexFasterThanScan(t *testing.T) {
	tab, err := E8Search(Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		indexed := parseSec(t, row[2])
		scanned := parseSec(t, row[3])
		if indexed >= scanned {
			t.Errorf("catalog %s: indexed %.2fms not below scan %.2fms", row[0], indexed, scanned)
		}
	}
}

func TestE9FormulasValidate(t *testing.T) {
	tab, err := E9Formulas(Small)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range tab.Notes {
		if n == "validation passed" {
			found = true
		}
	}
	if !found {
		t.Error("validation note missing")
	}
}

func TestE10LargerPayloadSmallerM(t *testing.T) {
	tab, err := E10AdaptiveM(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Under the concurrent fan-out model, tiny latency-bound payloads
	// pick a strictly larger degree than huge bandwidth-bound payloads;
	// the contrast shows at the highest bandwidth, where latency
	// dominates the midi transfer.
	var midiFan, lectureFan float64
	for _, row := range tab.Rows {
		if row[2] != "100 Mb/s" {
			continue
		}
		if row[0] == "midi score" {
			midiFan = parseSec(t, row[5])
		}
		if row[0] == "full lecture" {
			lectureFan = parseSec(t, row[5])
		}
	}
	if midiFan == 0 || lectureFan == 0 {
		t.Fatal("rows missing")
	}
	if midiFan <= lectureFan {
		t.Errorf("fan-out m for midi %.0f should exceed full lecture %.0f", midiFan, lectureFan)
	}
	// The serial model's choice is payload-independent (a property of
	// the model the table documents).
	serial := map[string]bool{}
	for _, row := range tab.Rows {
		serial[row[3]] = true
	}
	if len(serial) != 1 {
		t.Errorf("serial model chose multiple degrees: %v", serial)
	}
}

func TestAllSmall(t *testing.T) {
	tables, err := All(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 11 {
		t.Fatalf("tables = %d", len(tables))
	}
	ids := map[string]bool{}
	for _, tab := range tables {
		if tab.ID == "" || len(tab.Rows) == 0 {
			t.Errorf("table %q empty", tab.Title)
		}
		ids[tab.ID] = true
		if out := tab.Render(); !strings.Contains(out, tab.ID) {
			t.Errorf("render of %s missing id", tab.ID)
		}
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11"} {
		if !ids[id] {
			t.Errorf("missing %s", id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e4"); !ok {
		t.Error("e4 not found")
	}
	if _, ok := ByID("E10"); !ok {
		t.Error("E10 not found")
	}
	if _, ok := ByID("e99"); ok {
		t.Error("e99 found")
	}
}

func TestE11ChunkingBeatsStoreAndForward(t *testing.T) {
	tab, err := E11Pipelining(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	base := parseSec(t, tab.Rows[0][2])
	best := base
	for _, row := range tab.Rows[1:] {
		if v := parseSec(t, row[2]); v < best {
			best = v
		}
	}
	if best >= base {
		t.Errorf("no chunking row beats store-and-forward %.3f (best %.3f)", base, best)
	}
	if base/best < 1.2 {
		t.Errorf("best speedup = %.2fx, want >= 1.2x on a deep tree", base/best)
	}
}
