// Package minisql implements a small SQL dialect over the relstore
// engine. It stands in for the ODBC/JDBC connection through which the
// paper's class administrator front end reaches the commercial SQL
// server: CREATE TABLE / CREATE INDEX / DROP TABLE, INSERT, SELECT with
// conjunctive WHERE, ORDER BY and LIMIT, UPDATE, DELETE, plus SHOW
// TABLES and DESCRIBE for administration.
package minisql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , ; * = != <> < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// Error is a syntax or execution error carrying the offending position.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("minisql: %s (at offset %d)", e.Msg, e.Pos)
}

func errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex splits the statement into tokens. String literals use single
// quotes with ” as the escape, per SQL convention.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= len(src) {
					return nil, errf(start, "unterminated string literal")
				}
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(src) && unicode.IsDigit(rune(src[i+1]))):
			start := i
			i++
			for i < len(src) && (unicode.IsDigit(rune(src[i])) || src[i] == '.' || src[i] == 'e' ||
				src[i] == 'E' || ((src[i] == '+' || src[i] == '-') && (src[i-1] == 'e' || src[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{tokNumber, src[start:i], start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) ||
				src[i] == '_' || src[i] == '.') {
				i++
			}
			toks = append(toks, token{tokIdent, src[start:i], start})
		default:
			start := i
			// Two-character operators first.
			if i+1 < len(src) {
				two := src[i : i+2]
				if two == "!=" || two == "<>" || two == "<=" || two == ">=" {
					toks = append(toks, token{tokPunct, two, start})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', ';', '*', '=', '<', '>':
				toks = append(toks, token{tokPunct, string(c), start})
				i++
			default:
				return nil, errf(i, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

// keyword matching is case-insensitive, as in SQL.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
