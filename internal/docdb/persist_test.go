package docdb

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/atomicio"
	"repro/internal/blob"
	"repro/internal/relstore"
)

// newDurableStore opens a station store over a durability directory,
// the way webdocd does: schema installed by Open, state recovered from
// the newest checkpoint generation plus the WAL tail chain.
func newDurableStore(t *testing.T, dir string) (*Store, *relstore.RecoverInfo) {
	t.Helper()
	s, err := Open(relstore.NewDB(), blob.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	s.Now = func() time.Time { return time.Date(1999, 4, 21, 9, 0, 0, 0, time.UTC) }
	info, err := s.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s, info
}

// TestCheckpointCoversBlobsAcrossSIGKILL is the station-level crash
// matrix: a checkpoint lands, more writes follow (their WAL records
// reach disk, their BLOB bytes only reach memory), and the process
// dies without any shutdown. The restart must restore every
// checkpointed row AND every checkpointed BLOB byte, replay the
// post-checkpoint relational tail, and resync the ID counter so fresh
// IDs cannot collide with restored ones.
func TestCheckpointCoversBlobsAcrossSIGKILL(t *testing.T) {
	dir := t.TempDir()
	s, _ := newDurableStore(t, dir)
	_, url := seedCourse(t, s)
	mediaBefore, err := s.ImplMedia(url)
	if err != nil {
		t.Fatal(err)
	}
	if len(mediaBefore) == 0 {
		t.Fatal("seeded course has no media")
	}
	htmlBefore, err := s.HTML(url, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.CheckpointNow()
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 1 {
		t.Fatalf("checkpoint generation = %d", info.Gen)
	}

	// Post-checkpoint writes: the rows hit the WAL tail; the new BLOB
	// bytes exist only in memory, exactly the window a SIGKILL between
	// a WAL append and any sidecar write exposes.
	if err := s.PutHTML(url, "late.html", []byte("<html>late</html>")); err != nil {
		t.Fatal(err)
	}
	lateMedia, err := s.AttachImplMedia(url, "late.wav", blob.KindAudio, bytes.Repeat([]byte("zz"), 400))
	if err != nil {
		t.Fatal(err)
	}
	// SIGKILL: the store is abandoned with no CloseWAL and no sidecar
	// write. (Appends flush per commit, so the tail is on disk.)

	s2, rec := newDurableStore(t, dir)
	if rec.Gen != 1 {
		t.Errorf("recovered generation = %d, want 1", rec.Gen)
	}
	if rec.Applied == 0 {
		t.Error("restart replayed no tail transactions")
	}
	// Checkpointed state is complete: every pre-checkpoint media ref
	// still resolves to physical BLOB bytes, and the pages match.
	for _, m := range mediaBefore {
		if !s2.Blobs().Has(m.Ref) {
			t.Errorf("checkpointed BLOB %s lost across SIGKILL", m.Name)
		}
	}
	htmlAfter, err := s2.HTML(url, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(htmlAfter, htmlBefore) {
		t.Error("checkpointed page content changed across SIGKILL")
	}
	// The post-checkpoint relational writes survived via the tail...
	if _, err := s2.HTML(url, "late.html"); err != nil {
		t.Errorf("post-checkpoint page lost: %v", err)
	}
	media, err := s2.ImplMedia(url)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range media {
		if m.ResID == lateMedia.ResID {
			found = true
		}
	}
	if !found {
		t.Error("post-checkpoint media row lost")
	}
	// ...while the un-checkpointed BLOB bytes are the documented loss.
	if s2.Blobs().Has(lateMedia.Ref) {
		t.Error("un-checkpointed BLOB bytes survived a SIGKILL — test premise broken")
	}
	// ID counter resync: a fresh media row must not collide with the
	// restored ones.
	if _, err := s2.AttachImplMedia(url, "fresh.gif", blob.KindImage, []byte("fresh")); err != nil {
		t.Errorf("ID counter collided after recovery: %v", err)
	}
}

// TestRecoverUsesSidecarOfChosenGeneration: a crash mid-checkpoint can
// strand a newer BLOB sidecar whose relational snapshot never landed.
// Recovery picks the sidecar matching the generation it actually
// loads, not the newest file on disk.
func TestRecoverUsesSidecarOfChosenGeneration(t *testing.T) {
	dir := t.TempDir()
	s, _ := newDurableStore(t, dir)
	_, url := seedCourse(t, s)
	if _, err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	phys := s.Blobs().Stats().PhysicalBytes

	// The crashed generation 2: sidecar renamed, snapshot stranded as
	// a temp (atomic writes rename the sidecar first).
	stray := blob.NewStore()
	stray.Put("ghost", blob.KindOther, []byte("ghost bytes"))
	if err := atomicio.WriteFile(filepath.Join(dir, blobFileName(2)), stray.Snapshot); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000002.tmp-9"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := newDurableStore(t, dir)
	if rec.Gen != 1 {
		t.Fatalf("recovered generation = %d, want 1", rec.Gen)
	}
	if got := s2.Blobs().Stats().PhysicalBytes; got != phys {
		t.Errorf("recovered BLOB bytes = %d, want the generation-1 sidecar's %d", got, phys)
	}
	if _, err := s2.ExportBundle(url); err != nil {
		t.Errorf("bundle after fallback recovery: %v", err)
	}
}

// TestCheckpointPrunesBlobSidecars: only the newest generation's
// sidecar remains after a successful checkpoint.
func TestCheckpointPrunesBlobSidecars(t *testing.T) {
	dir := t.TempDir()
	s, _ := newDurableStore(t, dir)
	seedCourse(t, s)
	if _, err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, blobFileName(1))); !os.IsNotExist(err) {
		t.Error("generation-1 sidecar survived the generation-2 checkpoint")
	}
	if _, err := os.Stat(filepath.Join(dir, blobFileName(2))); err != nil {
		t.Errorf("generation-2 sidecar missing: %v", err)
	}
}

// TestCheckpointWithoutDirFails mirrors relstore's guard at the store
// level.
func TestCheckpointWithoutDirFails(t *testing.T) {
	s := newStore(t)
	if _, err := s.CheckpointNow(); err == nil {
		t.Fatal("checkpoint of an in-memory store succeeded")
	}
}
