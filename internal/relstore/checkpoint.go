package relstore

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/atomicio"
	"repro/internal/wire"
)

// Generation-numbered checkpoints and log compaction.
//
// A durability directory holds, per generation g:
//
//	snap-<g>   a consistent image of the whole database (a CRC-sealed
//	           binary image, see snapbin.go; pre-overhaul gob images
//	           still load), written temp-then-rename so it is either
//	           absent or complete
//	wal-<g>    the write-ahead log tail: every transaction committed
//	           after checkpoint g and before g+1, as CRC-framed binary
//	           records (legacy JSON lines still replay)
//
// Checkpoint(dir) captures the image and atomically rotates the
// attached WAL inside one write-quiescent window, so the snapshot and
// the fresh tail describe exactly the same point in history. Recovery
// (OpenDurable) loads the newest decodable snapshot and then
// chain-replays every tail at or above its generation in order —
// which makes every crash point safe:
//
//	crash before the new tail exists      -> old snap + old tail
//	crash after the tail, before the snap -> old snap + old tail + new
//	                                         (empty) tail
//	crash after the snap rename           -> new snap + new tail
//
// Restart cost is therefore bounded by the writes since the last
// checkpoint, not by the station's lifetime. Sidecar state (the BLOB
// store, see docdb) is written inside the same window and renamed
// before the snapshot, so a visible snap-<g> implies its sidecar
// landed too.

// CheckpointInfo describes one installed checkpoint generation.
type CheckpointInfo struct {
	Gen      uint64 // generation number
	Seq      uint64 // WAL sequence high-water the snapshot covers
	Snapshot string // path of the installed snapshot file
	WALTail  string // path of the fresh tail ("" without an attached WAL)
	Bytes    int64  // size of the snapshot file
}

// RecoverInfo describes a completed recovery.
type RecoverInfo struct {
	Gen     uint64 // generation of the snapshot loaded (0 when none)
	Applied int    // committed transactions replayed from WAL tails
	Seq     uint64 // WAL sequence high-water after recovery
	WALTail string // live tail attached for appends
}

// ckptImage is the on-disk snapshot format: one gob stream holding the
// generation header and the database image.
type ckptImage struct {
	Gen  uint64
	Seq  uint64
	Snap snapshot
}

func snapFileName(gen uint64) string { return fmt.Sprintf("snap-%010d", gen) }
func walFileName(gen uint64) string  { return fmt.Sprintf("wal-%010d", gen) }

// parseGenFile extracts the generation from a "<prefix><10 digits>"
// file name.
func parseGenFile(name, prefix string) (uint64, bool) {
	if len(name) != len(prefix)+10 || name[:len(prefix)] != prefix {
		return 0, false
	}
	var gen uint64
	for _, c := range name[len(prefix):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		gen = gen*10 + uint64(c-'0')
	}
	return gen, true
}

// scanGenerations lists the snapshot and tail generations present in
// dir, each sorted ascending.
func scanGenerations(dir string) (snaps, tails []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("relstore: scanning durability dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if gen, ok := parseGenFile(e.Name(), "snap-"); ok {
			snaps = append(snaps, gen)
		} else if gen, ok := parseGenFile(e.Name(), "wal-"); ok {
			tails = append(tails, gen)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(tails, func(i, j int) bool { return tails[i] < tails[j] })
	return snaps, tails, nil
}

// highestGeneration returns the largest generation any snapshot or
// tail in dir carries, zero on an empty or unreadable directory.
func highestGeneration(dir string) uint64 {
	snaps, tails, err := scanGenerations(dir)
	if err != nil {
		return 0
	}
	var hi uint64
	if n := len(snaps); n > 0 {
		hi = snaps[n-1]
	}
	if n := len(tails); n > 0 && tails[n-1] > hi {
		hi = tails[n-1]
	}
	return hi
}

// pruneGenerations removes snapshots and tails older than the kept
// generation. Best effort: a leftover file is re-pruned next time.
func pruneGenerations(dir string, keep uint64) {
	PruneGenerationFiles(dir, "snap-", keep)
	PruneGenerationFiles(dir, "wal-", keep)
}

// PruneGenerationFiles removes every "<prefix><10-digit gen>" file in
// dir older than the kept generation — the shared pruning rule for
// checkpoint files and for sidecars other layers (the BLOB store)
// write beside them. Best effort: removal errors are ignored.
func PruneGenerationFiles(dir, prefix string, keep uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if gen, ok := parseGenFile(e.Name(), prefix); ok && gen < keep {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// HasCheckpoint reports whether dir holds at least one installed
// checkpoint snapshot — the marker a completed (or
// interrupted-after-install) checkpoint leaves behind.
func HasCheckpoint(dir string) bool {
	snaps, _, err := scanGenerations(dir)
	return err == nil && len(snaps) > 0
}

// readSnapshotFile decodes one snap-<gen> file, sniffing the first
// byte to pick the binary or the legacy gob decode — a pre-overhaul
// snapshot loads one last time and the next checkpoint rewrites it in
// the binary format.
func readSnapshotFile(path string) (*ckptImage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if wire.IsImage(wire.SnapMagic, data) {
		payload, err := wire.OpenImage(wire.SnapMagic, data)
		if err != nil {
			return nil, fmt.Errorf("relstore: decoding %s: %w", filepath.Base(path), err)
		}
		img, err := decodeCkptImage(payload)
		if err != nil {
			return nil, fmt.Errorf("relstore: decoding %s: %w", filepath.Base(path), err)
		}
		return img, nil
	}
	var img ckptImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return nil, fmt.Errorf("relstore: decoding %s: %w", filepath.Base(path), err)
	}
	return &img, nil
}

// OpenDurable attaches generation-numbered durability to the database:
// it loads the newest decodable checkpoint snapshot in dir, replays
// every WAL tail at or above that generation in ascending order, and
// attaches the newest tail for subsequent appends (creating the
// generation-0 tail on a fresh directory). The WAL sequence counter
// resumes from the recovered high-water mark. Call it once, before the
// database serves traffic and before any OpenWAL.
func (db *DB) OpenDurable(dir string) (*RecoverInfo, error) {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.metaMu.RLock()
	attached := db.wal != nil
	db.metaMu.RUnlock()
	if attached {
		return nil, fmt.Errorf("%w: detach it before OpenDurable", ErrWALOpen)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("relstore: creating durability dir: %w", err)
	}
	atomicio.RemoveTemps(dir)
	snaps, tails, err := scanGenerations(dir)
	if err != nil {
		return nil, err
	}
	info := &RecoverInfo{}
	// Newest decodable snapshot wins; a corrupt newer file falls back
	// to the previous generation, whose tail chain still reaches the
	// same history.
	var snapErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		img, err := readSnapshotFile(filepath.Join(dir, snapFileName(snaps[i])))
		if err == nil {
			err = db.installSnapshot(&img.Snap)
		}
		if err != nil {
			snapErr = err
			continue
		}
		info.Gen = img.Gen
		info.Seq = img.Seq
		db.noteReplaySeq(img.Seq)
		break
	}
	if len(snaps) > 0 && info.Gen == 0 {
		return nil, fmt.Errorf("relstore: no loadable checkpoint in %s: %w", dir, snapErr)
	}
	// Chain-replay the tails the snapshot does not cover.
	for _, gen := range tails {
		if gen < info.Gen {
			continue
		}
		f, err := os.Open(filepath.Join(dir, walFileName(gen)))
		if err != nil {
			return nil, err
		}
		applied, seq, rerr := db.ReplayWAL(f)
		f.Close()
		info.Applied += applied
		if seq > info.Seq {
			info.Seq = seq
		}
		if rerr != nil {
			return nil, fmt.Errorf("relstore: replaying %s: %w", walFileName(gen), rerr)
		}
	}
	tailGen := info.Gen
	if n := len(tails); n > 0 && tails[n-1] > tailGen {
		tailGen = tails[n-1]
	}
	tail := filepath.Join(dir, walFileName(tailGen))
	if err := db.OpenWAL(tail); err != nil {
		return nil, err
	}
	db.dir = dir
	db.gen = info.Gen
	info.WALTail = tail
	pruneGenerations(dir, info.Gen)
	return info, nil
}

// Checkpoint writes a new checkpoint generation into dir (the
// directory OpenDurable attached when dir is empty) and atomically
// rotates the attached WAL, so the next restart loads the snapshot and
// replays only the tail written afterwards.
func (db *DB) Checkpoint(dir string) (*CheckpointInfo, error) {
	return db.CheckpointWith(dir, nil)
}

// CheckpointWith is Checkpoint with a sidecar hook: fn runs inside the
// write-quiescent window, before the snapshot is installed, so sidecar
// state (the document store's BLOB bytes) lands under the same
// generation — a visible snap-<gen> implies the sidecar's rename
// happened first. A sidecar failure aborts the checkpoint; the rotated
// tail remains part of the recovery chain, so nothing is lost.
func (db *DB) CheckpointWith(dir string, sidecar func(gen uint64) error) (*CheckpointInfo, error) {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	if dir == "" {
		dir = db.dir
	}
	if dir == "" {
		return nil, errors.New("relstore: no durability directory attached; pass one to Checkpoint")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("relstore: creating durability dir: %w", err)
	}
	gen := db.gen
	if hi := highestGeneration(dir); hi > gen {
		gen = hi
	}
	gen++

	// Write-quiescent window: the shared schema lock plus every
	// table's read lock. Commits append to the WAL while holding their
	// tables' write locks, so inside the window no transaction sits
	// between mutating a table and logging the mutation — the captured
	// image and the rotated tail cut history at exactly the same
	// point. Reads proceed throughout; writers block only for the
	// capture, the tail swap and the sidecar, not for the encode.
	db.metaMu.RLock()
	names := db.lockAllTablesShared()
	snap := db.captureLocked()
	seq := db.lastSeq
	var rotateErr, sideErr error
	tailPath := ""
	if wal := db.wal; wal != nil {
		wal.mu.Lock()
		seq = wal.seq
		tailPath, rotateErr = rotateTailLocked(wal, dir, gen)
		wal.mu.Unlock()
	}
	if rotateErr == nil && sidecar != nil {
		sideErr = sidecar(gen)
	}
	db.unlockAllTablesShared(names)
	db.metaMu.RUnlock()
	if rotateErr != nil {
		return nil, fmt.Errorf("relstore: rotating WAL: %w", rotateErr)
	}
	if sideErr != nil {
		return nil, fmt.Errorf("relstore: checkpoint sidecar: %w", sideErr)
	}

	// Encode and install outside the window: stored rows are immutable
	// (mutations install fresh Row maps), so the captured image stays
	// valid while writers fill the new tail. The rename is the commit
	// point of the whole checkpoint.
	img := ckptImage{Gen: gen, Seq: seq, Snap: snap}
	payload, err := appendCkptImage(wire.GetBuf(), &img)
	if err != nil {
		return nil, err
	}
	sealed := wire.SealImage(wire.SnapMagic, payload)
	wire.PutBuf(payload)
	path := filepath.Join(dir, snapFileName(gen))
	if err := atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(sealed)
		return err
	}); err != nil {
		return nil, err
	}
	db.gen = gen
	if db.dir == "" {
		db.dir = dir
	}
	pruneGenerations(dir, gen)
	info := &CheckpointInfo{Gen: gen, Seq: seq, Snapshot: path, WALTail: tailPath}
	if fi, err := os.Stat(path); err == nil {
		info.Bytes = fi.Size()
	}
	return info, nil
}

// rotateTailLocked flushes and syncs the current tail, then swaps the
// attached log onto a fresh wal-<gen> file. Caller holds wal.mu inside
// the write-quiescent window, so no append can slip between the two
// files.
func rotateTailLocked(wal *WAL, dir string, gen uint64) (string, error) {
	path := filepath.Join(dir, walFileName(gen))
	fresh, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return "", err
	}
	if err := wal.w.Flush(); err != nil {
		fresh.Close()
		os.Remove(path)
		return "", err
	}
	if err := wal.f.Sync(); err != nil {
		fresh.Close()
		os.Remove(path)
		return "", err
	}
	old := wal.f
	wal.f = fresh
	wal.w = bufio.NewWriter(fresh)
	wal.bytes = 0
	old.Close()
	return path, nil
}

// Generation reports the newest installed checkpoint generation (zero
// before the first checkpoint).
func (db *DB) Generation() uint64 {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.gen
}
