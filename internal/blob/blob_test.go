package blob

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore()
	data := []byte("a short video")
	ref := s.Put("clip.mpg", KindVideo, data)
	if ref.Size != int64(len(data)) || ref.Kind != KindVideo {
		t.Fatalf("ref = %+v", ref)
	}
	got, err := s.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("content mismatch")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	ref := s.Put("x", KindImage, []byte{1, 2, 3})
	got, _ := s.Get(ref)
	got[0] = 99
	again, _ := s.Get(ref)
	if again[0] != 1 {
		t.Error("mutation leaked into the store")
	}
}

func TestPutOwnsItsData(t *testing.T) {
	s := NewStore()
	data := []byte{1, 2, 3}
	ref := s.Put("x", KindImage, data)
	data[0] = 99
	got, _ := s.Get(ref)
	if got[0] != 1 {
		t.Error("caller mutation leaked into the store")
	}
}

func TestDedupIdenticalContent(t *testing.T) {
	s := NewStore()
	data := bytes.Repeat([]byte("media"), 1000)
	r1 := s.Put("lecture1/clip", KindAudio, data)
	r2 := s.Put("lecture2/clip", KindAudio, data)
	if r1.Hash != r2.Hash {
		t.Fatal("identical content produced different refs")
	}
	st := s.Stats()
	if st.Objects != 1 {
		t.Errorf("objects = %d, want 1", st.Objects)
	}
	if st.PhysicalBytes != int64(len(data)) {
		t.Errorf("physical = %d, want %d", st.PhysicalBytes, len(data))
	}
	if st.LogicalBytes != 2*int64(len(data)) {
		t.Errorf("logical = %d, want %d", st.LogicalBytes, 2*len(data))
	}
	if st.DedupHits != 1 {
		t.Errorf("dedupHits = %d, want 1", st.DedupHits)
	}
	if got := st.SharingFactor(); got != 2.0 {
		t.Errorf("sharing factor = %v, want 2", got)
	}
	if s.RefCount(r1) != 2 {
		t.Errorf("refcount = %d, want 2", s.RefCount(r1))
	}
}

func TestReleaseEvictsAtZero(t *testing.T) {
	s := NewStore()
	ref := s.Put("x", KindMIDI, []byte("notes"))
	if err := s.Retain(ref); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(ref); err != nil {
		t.Fatal(err)
	}
	if !s.Has(ref) {
		t.Fatal("object evicted while referenced")
	}
	if err := s.Release(ref); err != nil {
		t.Fatal(err)
	}
	if s.Has(ref) {
		t.Fatal("object survived last release")
	}
	st := s.Stats()
	if st.PhysicalBytes != 0 || st.LogicalBytes != 0 || st.Objects != 0 {
		t.Errorf("stats after eviction = %+v", st)
	}
	if err := s.Release(ref); !errors.Is(err, ErrNotFound) {
		t.Errorf("release after eviction: %v", err)
	}
}

func TestRetainMissing(t *testing.T) {
	s := NewStore()
	err := s.Retain(Ref{Hash: "deadbeefdeadbeef", Size: 1})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestZeroRefRejected(t *testing.T) {
	s := NewStore()
	if _, err := s.Get(Ref{}); !errors.Is(err, ErrZeroRef) {
		t.Errorf("Get: %v", err)
	}
	if err := s.Retain(Ref{}); !errors.Is(err, ErrZeroRef) {
		t.Errorf("Retain: %v", err)
	}
	if err := s.Release(Ref{}); !errors.Is(err, ErrZeroRef) {
		t.Errorf("Release: %v", err)
	}
	if s.Has(Ref{}) {
		t.Error("Has(zero) = true")
	}
}

func TestNamesAccumulate(t *testing.T) {
	s := NewStore()
	data := []byte("shared")
	s.Put("b-name", KindImage, data)
	ref := s.Put("a-name", KindImage, data)
	names := s.Names(ref)
	if len(names) != 2 || names[0] != "a-name" || names[1] != "b-name" {
		t.Errorf("names = %v", names)
	}
}

func TestListSorted(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("n%d", i), KindOther, []byte{byte(i)})
	}
	refs := s.List()
	if len(refs) != 10 {
		t.Fatalf("len = %d", len(refs))
	}
	for i := 1; i < len(refs); i++ {
		if refs[i-1].Hash >= refs[i].Hash {
			t.Fatal("List not sorted")
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindVideo: "video", KindAudio: "audio", KindImage: "image",
		KindAnimation: "animation", KindMIDI: "midi", KindOther: "other",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %s", k, k.String())
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("unknown kind: %s", Kind(42).String())
	}
}

func TestConcurrentPutsAndReleases(t *testing.T) {
	s := NewStore()
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Half the content is shared across workers, half unique.
				var data []byte
				if i%2 == 0 {
					data = []byte(fmt.Sprintf("shared-%d", i))
				} else {
					data = []byte(fmt.Sprintf("unique-%d-%d", w, i))
				}
				ref := s.Put("n", KindOther, data)
				if _, err := s.Get(ref); err != nil {
					t.Error(err)
					return
				}
				if err := s.Release(ref); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Objects != 0 || st.PhysicalBytes != 0 {
		t.Errorf("store not empty after balanced put/release: %+v", st)
	}
}

// Property: physical bytes always equal the sum of distinct content
// sizes, and logical bytes equal Σ size × refcount, across arbitrary
// put/retain/release interleavings.
func TestQuickAccountingInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		s := NewStore()
		type live struct {
			ref Ref
			n   int
		}
		pool := map[string]*live{} // content key -> state
		contents := []string{"a", "bb", "ccc", "dddd", "eeeee"}
		for _, op := range ops {
			key := contents[int(op)%len(contents)]
			l := pool[key]
			switch (op / 8) % 3 {
			case 0: // put
				ref := s.Put("n", KindOther, []byte(key))
				if l == nil {
					l = &live{ref: ref}
					pool[key] = l
				}
				l.n++
			case 1: // retain
				if l != nil && l.n > 0 {
					if err := s.Retain(l.ref); err != nil {
						return false
					}
					l.n++
				}
			case 2: // release
				if l != nil && l.n > 0 {
					if err := s.Release(l.ref); err != nil {
						return false
					}
					l.n--
				}
			}
		}
		var wantPhysical, wantLogical int64
		var wantObjects int
		for key, l := range pool {
			if l.n > 0 {
				wantObjects++
				wantPhysical += int64(len(key))
				wantLogical += int64(len(key)) * int64(l.n)
			}
		}
		st := s.Stats()
		return st.Objects == wantObjects && st.PhysicalBytes == wantPhysical && st.LogicalBytes == wantLogical
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
