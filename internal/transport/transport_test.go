package transport

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

type echoReq struct {
	Text string
	N    int
}

type echoResp struct {
	Text  string
	Twice int
}

func startEcho(t *testing.T) (string, *Server) {
	t.Helper()
	s := NewServer()
	s.Handle("echo", func(decode func(any) error) (any, error) {
		var req echoReq
		if err := decode(&req); err != nil {
			return nil, err
		}
		return echoResp{Text: req.Text, Twice: req.N * 2}, nil
	})
	s.Handle("fail", func(decode func(any) error) (any, error) {
		return nil, errors.New("deliberate failure")
	})
	s.Handle("slow", func(decode func(any) error) (any, error) {
		time.Sleep(50 * time.Millisecond)
		return echoResp{Text: "slow"}, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return addr, s
}

func TestCallRoundTrip(t *testing.T) {
	addr, _ := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp echoResp
	if err := c.Call("echo", echoReq{Text: "hello", N: 21}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Text != "hello" || resp.Twice != 42 {
		t.Errorf("resp = %+v", resp)
	}
}

func TestCallServerError(t *testing.T) {
	addr, _ := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("fail", echoReq{}, nil)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestCallUnknownMethod(t *testing.T) {
	addr, _ := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("nope", echoReq{}, nil)
	if err == nil || !strings.Contains(err.Error(), "no such method") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentCallsCorrelate(t *testing.T) {
	addr, _ := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp echoResp
			text := fmt.Sprintf("msg-%d", i)
			if err := c.Call("echo", echoReq{Text: text, N: i}, &resp); err != nil {
				t.Error(err)
				return
			}
			if resp.Text != text || resp.Twice != i*2 {
				t.Errorf("mismatched response: sent %s/%d got %+v", text, i, resp)
			}
		}(i)
	}
	wg.Wait()
}

func TestSlowHandlerDoesNotBlockOthers(t *testing.T) {
	addr, _ := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	slowDone := make(chan struct{})
	go func() {
		var resp echoResp
		c.Call("slow", echoReq{}, &resp)
		close(slowDone)
	}()
	start := time.Now()
	var resp echoResp
	if err := c.Call("echo", echoReq{Text: "fast"}, &resp); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Errorf("fast call took %v behind slow call", d)
	}
	<-slowDone
}

func TestClientCloseFailsPending(t *testing.T) {
	addr, _ := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.Call("slow", echoReq{}, nil)
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("pending call succeeded after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call hung after close")
	}
	if err := c.Call("echo", echoReq{}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("call after close: %v", err)
	}
}

func TestServerCloseStopsClients(t *testing.T) {
	addr, s := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp echoResp
	if err := c.Call("echo", echoReq{Text: "x"}, &resp); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := c.Call("echo", echoReq{Text: "y"}, &resp); err == nil {
		t.Error("call succeeded after server close")
	}
}

func TestLargePayload(t *testing.T) {
	addr, _ := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := strings.Repeat("x", 4<<20)
	var resp echoResp
	if err := c.Call("echo", echoReq{Text: big, N: 1}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Text) != len(big) {
		t.Errorf("len = %d", len(resp.Text))
	}
}

func TestFrameEncodingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &envelope{ID: 7, Method: "m", Body: []byte{1, 2, 3}}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 7 || out.Method != "m" || len(out.Body) != 3 {
		t.Errorf("out = %+v", out)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	// An undecodable payload is body corruption (ErrChecksum), not a
	// header problem: the length prefix itself parsed fine.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 4})
	buf.Write([]byte("junk"))
	if _, err := readFrame(&buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v", err)
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	b, err := Marshal(echoReq{Text: "t", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	var out echoReq
	if err := Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Text != "t" || out.N != 3 {
		t.Errorf("out = %+v", out)
	}
}
