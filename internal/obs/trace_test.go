package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[uint64]bool, 10000)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace id")
		}
		if seen[id] {
			t.Fatalf("duplicate id %x after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestSpanRingWrapAndForTrace(t *testing.T) {
	r := NewSpanRing(4)
	for i := 1; i <= 6; i++ {
		r.Add(Span{TraceID: uint64(i%2 + 1), SpanID: uint64(i)})
	}
	all := r.Snapshot()
	if len(all) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(all))
	}
	// Oldest-first: spans 3,4,5,6 survive.
	if all[0].SpanID != 3 || all[3].SpanID != 6 {
		t.Fatalf("ring order = %v..%v", all[0].SpanID, all[3].SpanID)
	}
	// Trace 1 owns even i (i%2+1==1): spans 4 and 6 retained.
	got := r.ForTrace(1)
	if len(got) != 2 || got[0].SpanID != 4 || got[1].SpanID != 6 {
		t.Fatalf("ForTrace(1) = %+v", got)
	}
	if r.ForTrace(0) != nil {
		t.Fatal("ForTrace(0) must return nothing")
	}
}

func TestObserverSpanLifecycle(t *testing.T) {
	o := NewObserver(16)
	o.SetPos(5)

	if sp := o.Begin(TraceContext{}, "Fabric.Push"); sp != nil {
		t.Fatal("untraced request must yield a nil span")
	}

	parent := TraceContext{TraceID: 77, SpanID: 11}
	sp := o.Begin(parent, "Fabric.Push")
	if sp == nil {
		t.Fatal("traced request must yield a span")
	}
	child := sp.Context()
	if child.TraceID != 77 || child.SpanID == 0 || child.SpanID == parent.SpanID {
		t.Fatalf("child context = %+v", child)
	}
	sp.Annotate("grafted dead child %d", 5)
	sp.AddBytes(128)
	sp.End(errors.New("boom"))

	spans := o.ForTrace(77)
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	got := spans[0]
	if got.Parent != 11 || got.Station != 5 || got.Bytes != 128 || got.Err != "boom" {
		t.Fatalf("span = %+v", got)
	}
	if len(got.Notes) != 1 || got.Notes[0] != "grafted dead child 5" {
		t.Fatalf("notes = %v", got.Notes)
	}
	if got.Duration < 0 {
		t.Fatalf("duration = %v", got.Duration)
	}
}

func TestNilObserverAndSpanSafe(t *testing.T) {
	var o *Observer
	o.SetPos(3)
	o.Observe("m", time.Millisecond, false)
	if o.Pos() != 0 || o.ForTrace(1) != nil || o.RecentSpans(5) != nil {
		t.Fatal("nil observer must be inert")
	}
	sp := o.Begin(TraceContext{TraceID: 9}, "m")
	if sp != nil {
		t.Fatal("nil observer must yield nil span")
	}
	// Every ActiveSpan method tolerates nil.
	sp.Annotate("x %d", 1)
	sp.AddBytes(10)
	sp.End(nil)
	if ctx := sp.Context(); ctx.TraceID != 0 {
		t.Fatalf("nil span context = %+v", ctx)
	}
}

func TestRecentSpansNewestFirst(t *testing.T) {
	o := NewObserver(8)
	for i := 1; i <= 3; i++ {
		sp := o.Begin(TraceContext{TraceID: uint64(i)}, "m")
		sp.End(nil)
	}
	recent := o.RecentSpans(2)
	if len(recent) != 2 || recent[0].TraceID != 3 || recent[1].TraceID != 2 {
		t.Fatalf("recent = %+v", recent)
	}
}

// TestNotableSpansSurviveFlood pins the reservoir fix for FIFO
// eviction loss: one slow span and one failed span must remain
// inspectable after thousands of fast spans wash through a small ring,
// while routine spans still fall off the back.
func TestNotableSpansSurviveFlood(t *testing.T) {
	r := NewSpanRing(32)
	slow := Span{TraceID: 1, SpanID: 1000, Method: "Fabric.Push", Duration: 250 * time.Millisecond}
	failed := Span{TraceID: 2, SpanID: 2000, Method: "Fabric.Search", Err: "deadline exceeded"}
	r.Add(slow)
	r.Add(failed)
	for i := 0; i < 5000; i++ {
		r.Add(Span{TraceID: 3, SpanID: uint64(10000 + i), Duration: 50 * time.Microsecond})
	}
	if got := r.ForTrace(1); len(got) != 1 || got[0].SpanID != slow.SpanID {
		t.Fatalf("slow span lost to the flood: ForTrace(1) = %+v", got)
	}
	if got := r.ForTrace(2); len(got) != 1 || got[0].Err == "" {
		t.Fatalf("failed span lost to the flood: ForTrace(2) = %+v", got)
	}
	// The reservoir must not duplicate spans still in the ring.
	recent := Span{TraceID: 4, SpanID: 3000, Duration: 500 * time.Millisecond}
	r.Add(recent)
	if got := r.ForTrace(4); len(got) != 1 {
		t.Fatalf("in-ring notable span reported %d times, want 1", len(got))
	}
	// Routine spans still age out: the flood's early spans are gone.
	if got := r.ForTrace(3); len(got) > 32 {
		t.Fatalf("%d routine spans retained, want at most the ring size", len(got))
	}
}

// TestReservoirPrefersWorstSpans: with the reservoir full, a slower
// span displaces the quickest holder, and errors are never displaced
// by mere slowness.
func TestReservoirPrefersWorstSpans(t *testing.T) {
	r := NewSpanRing(1) // minimum ring, reservoir cap 16
	for i := 0; i < 16; i++ {
		r.Add(Span{SpanID: uint64(100 + i), Duration: notableFloor + time.Duration(i)*time.Millisecond})
	}
	// Much slower than every holder: must displace one.
	r.Add(Span{SpanID: 9999, Duration: 10 * time.Second})
	found := false
	for _, sp := range r.Snapshot() {
		if sp.SpanID == 9999 {
			found = true
		}
	}
	if !found {
		t.Fatal("slowest span did not win a reservoir slot")
	}
	// An error span beats any duration.
	r.Add(Span{SpanID: 8888, Err: "boom"})
	found = false
	for _, sp := range r.Snapshot() {
		if sp.SpanID == 8888 {
			found = true
		}
	}
	if !found {
		t.Fatal("failed span did not win a reservoir slot")
	}
}

func TestEventFormat(t *testing.T) {
	line := NewEvent("graft", "parent", 2, "child", 5, "err", "dial tcp: connection refused").Line()
	if !strings.HasPrefix(line, "event=graft parent=2 child=5 err=") {
		t.Fatalf("line = %q", line)
	}
	if !strings.Contains(line, `"dial tcp: connection refused"`) {
		t.Fatalf("spacey value not quoted: %q", line)
	}
	if got := NewEvent("rejoin", "pos", 4).Line(); got != "event=rejoin pos=4" {
		t.Fatalf("got %q", got)
	}
}
