package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SentinelErr flags ==/!= comparisons against the module's sentinel
// errors (package-level error variables named Err*). Every layer here
// wraps errors with %w — the transport wraps peer errors, relstore
// wraps table names in, wire wraps offsets — so a direct comparison
// silently stops matching the moment anyone adds context. errors.Is
// walks the wrap chain and is the only comparison that stays correct.
// Comparisons against nil and against sentinels from other modules
// (io.EOF has its own idioms) are left alone.
var SentinelErr = &Analyzer{
	Name: "sentinelerr",
	Doc:  "sentinel errors must be matched with errors.Is, not == or !=",
	Run:  runSentinelErr,
}

func runSentinelErr(p *Pass) {
	modulePrefix := moduleOf(p.Pkg.Path())
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			for _, operand := range []ast.Expr{bin.X, bin.Y} {
				v := sentinelVar(p, operand, modulePrefix)
				if v == nil {
					continue
				}
				p.Reportf(bin.Pos(), "comparison %s %s misses wrapped errors; use errors.Is(err, %s.%s)", bin.Op, v.Name(), v.Pkg().Name(), v.Name())
				return true
			}
			return true
		})
	}
}

// sentinelVar resolves expr to a package-level error variable named
// Err* declared inside this module, nil otherwise.
func sentinelVar(p *Pass, expr ast.Expr, modulePrefix string) *types.Var {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := p.ObjectOf(id).(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // a local variable that happens to be named Err*
	}
	if moduleOf(v.Pkg().Path()) != modulePrefix {
		return nil
	}
	if !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
		return nil
	}
	return v
}

// moduleOf reduces an import path to its leading module-ish component
// ("repro/internal/wire" -> "repro"), enough to tell this module's
// packages from the standard library and anything else.
func moduleOf(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}
