package fabric

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/transport"
)

// Failure detection. The root owns liveness: it heartbeats every
// joined station, counts consecutive probe failures, and declares a
// station dead at the threshold — bumping the roster epoch so the
// decision rides out to the tree on the next RPC. Non-root stations
// contribute observations (ReportDown) when a fan-out or a resolve
// hits an unreachable peer; the root confirms with one probe of its
// own before believing them, so a single flaky connection cannot evict
// a healthy station.

// HeartbeatReply answers a liveness probe. Err carries the station's
// cluster.Node liveness-check failure, which the root treats exactly
// like an unreachable station.
type HeartbeatReply struct {
	Pos int
	Err string
}

// HealthReply is a station's liveness view of the fabric. Only the
// root's view is authoritative; other stations report what the last
// epoch told them plus their own suspicions.
type HealthReply struct {
	Pos     int
	N       int
	Epoch   int
	IsRoot  bool
	Down    []int
	Suspect []int
	Roster  map[int]string
}

// EvictRequest forces the root to declare a station dead immediately —
// the operator's override when waiting out the probe threshold is not
// an option.
type EvictRequest struct {
	Pos int
}

// ReportDownRequest carries a relay's observation that a peer was
// unreachable during a tree operation.
type ReportDownRequest struct {
	Pos int
}

// MarkDown declares a station dead (root only): its children graft
// onto their nearest live ancestor on the next tree operation, and
// resolve routes skip it. The epoch bump carries the decision to the
// rest of the tree.
func (s *Station) MarkDown(pos int) error {
	if !s.isRoot {
		return fmt.Errorf("%w: mark-down", ErrNotRoot)
	}
	if pos == 1 {
		return errors.New("fabric: the root station cannot be marked down")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.roster[pos]; !ok {
		return fmt.Errorf("fabric: no station at position %d", pos)
	}
	if !s.down[pos] {
		s.down[pos] = true
		delete(s.suspect, pos) // down supersedes suspicion
		s.epoch++
	}
	return nil
}

// MarkUp returns a station to service (root only). Heartbeats do this
// automatically when a dead station answers probes again; rejoin does
// it as part of re-assigning the position.
func (s *Station) MarkUp(pos int) error {
	if !s.isRoot {
		return fmt.Errorf("%w: mark-up", ErrNotRoot)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.roster[pos]; !ok {
		return fmt.Errorf("fabric: no station at position %d", pos)
	}
	if s.down[pos] || s.suspect[pos] {
		delete(s.down, pos)
		delete(s.suspect, pos)
		s.hbFails[pos] = 0
		s.epoch++
	}
	return nil
}

// Down reports whether the station's current view declares pos dead.
func (s *Station) Down(pos int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down[pos]
}

// Epoch returns the station's current roster epoch.
func (s *Station) Epoch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// StartHeartbeat begins the root's liveness sweep: every interval it
// probes each joined station with the per-probe timeout, declaring a
// station dead after hbFailThreshold consecutive failures and reviving
// it when probes succeed again. Idempotent-ish: a second call replaces
// the running loop.
func (s *Station) StartHeartbeat(interval, timeout time.Duration) error {
	if !s.isRoot {
		return fmt.Errorf("%w: heartbeat", ErrNotRoot)
	}
	if interval <= 0 {
		interval = DefaultHeartbeatInterval
	}
	if timeout <= 0 {
		timeout = DefaultHeartbeatTimeout
	}
	stop := make(chan struct{})
	// Swap the stop channel in one critical section: two concurrent
	// StartHeartbeat calls must not strand an unstoppable loop.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("fabric: station is closed")
	}
	old := s.hbStop
	s.hbStop = stop
	s.mu.Unlock()
	if old != nil {
		close(old)
	}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				s.ProbeOnce(timeout)
			}
		}
	}()
	return nil
}

// StopHeartbeat halts the liveness sweep (no-op when none runs).
func (s *Station) StopHeartbeat() {
	s.mu.Lock()
	stop := s.hbStop
	s.hbStop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}

// ProbeOnce runs one synchronous liveness sweep over every joined
// station, updating the failure counters and the down-set. Exposed so
// tests (and an operator's health check) can force a deterministic
// sweep instead of waiting out the heartbeat interval.
func (s *Station) ProbeOnce(timeout time.Duration) {
	if !s.isRoot {
		return
	}
	if timeout <= 0 {
		timeout = DefaultHeartbeatTimeout
	}
	v := s.view()
	type outcome struct {
		pos int
		err error
	}
	results := make(chan outcome, len(v.roster))
	probes := 0
	for pos, addr := range v.roster {
		if pos == 1 {
			continue
		}
		probes++
		go func(pos int, addr string) {
			results <- outcome{pos, s.probe(pos, addr, timeout)}
		}(pos, addr)
	}
	for i := 0; i < probes; i++ {
		out := <-results
		s.recordProbe(out.pos, out.err)
	}
}

// probe sends one heartbeat and validates the answer: a transport
// failure, a failing liveness check, or a station that turns out to
// hold a different position (the address was recycled) all count as
// probe failures. Probes ride their own single-connection pool so
// they never queue behind bundle transfers — a busy fabric must not
// look dead.
func (s *Station) probe(pos int, addr string, timeout time.Duration) error {
	var reply HeartbeatReply
	//lint:ignore tracecall heartbeat probes are deliberately untraced: they fire every interval on every station and would drown the span rings in no-op control-plane spans
	if err := s.hbPool(addr).CallWithTimeout(methodHeartbeat, struct{}{}, &reply, timeout); err != nil {
		return err
	}
	return validateHeartbeat(pos, addr, reply)
}

// probeDirect is probe over a fresh dial, bypassing the probe pool's
// dead-peer breaker. One-shot confirmations — a relay's down report, a
// rejoin takeover — must reflect the wire right now, not a verdict the
// breaker cached a moment ago: handing a position to a rejoiner on a
// stale fast-fail would split it between two live processes.
func (s *Station) probeDirect(pos int, addr string, timeout time.Duration) error {
	c, err := transport.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	var reply HeartbeatReply
	if err := c.CallTimeout(methodHeartbeat, struct{}{}, &reply, timeout); err != nil {
		return err
	}
	return validateHeartbeat(pos, addr, reply)
}

func validateHeartbeat(pos int, addr string, reply HeartbeatReply) error {
	if reply.Err != "" {
		return fmt.Errorf("fabric: station %d liveness check: %s", pos, reply.Err)
	}
	if reply.Pos != 0 && reply.Pos != pos {
		return fmt.Errorf("fabric: station at %s answers as position %d, not %d", addr, reply.Pos, pos)
	}
	return nil
}

// recordProbe folds one probe outcome into the failure counters,
// declaring or reviving the station at the edges.
func (s *Station) recordProbe(pos int, err error) {
	s.mu.Lock()
	if err == nil {
		s.hbFails[pos] = 0
		revive := s.down[pos] || s.suspect[pos]
		if revive {
			delete(s.down, pos)
			delete(s.suspect, pos)
			s.epoch++
		}
		epoch := s.epoch
		s.mu.Unlock()
		if revive {
			s.event("revived", "pos", pos, "epoch", epoch)
		}
		return
	}
	s.hbFails[pos]++
	fails := s.hbFails[pos]
	declare := fails >= hbFailThreshold && !s.down[pos]
	if declare {
		s.down[pos] = true
		delete(s.suspect, pos)
		s.epoch++
	}
	epoch := s.epoch
	s.mu.Unlock()
	if declare {
		s.event("down-declared", "pos", pos, "fails", fails, "epoch", epoch, "cause", err.Error())
	}
}

// noteSuspect records a locally observed peer failure and escalates it
// to the root, which confirms with a probe of its own. On the root the
// confirmation runs directly.
func (s *Station) noteSuspect(pos int) {
	s.mu.Lock()
	if s.suspect[pos] || s.down[pos] {
		s.mu.Unlock()
		return
	}
	s.suspect[pos] = true
	rootAddr := s.roster[1]
	isRoot := s.isRoot
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	s.event("suspect", "pos", pos, "reporter", s.Pos())
	if isRoot {
		go s.confirmDown(pos)
		return
	}
	if rootAddr != "" {
		// Best effort: the root also discovers the failure through its
		// own heartbeats, this just shortens the window.
		//lint:ignore tracecall fire-and-forget failure report on the control plane; there is no request trace to continue and none worth starting for a hint the root re-verifies anyway
		go s.pool(rootAddr).Call(methodReportDown, ReportDownRequest{Pos: pos}, nil)
	}
}

// confirmDown double-checks a reported failure with one short probe
// before declaring the station dead (root only).
func (s *Station) confirmDown(pos int) {
	s.mu.Lock()
	addr, held := s.roster[pos]
	already := s.down[pos]
	s.mu.Unlock()
	if !held || already || pos == 1 {
		return
	}
	if s.probeDirect(pos, addr, DefaultHeartbeatTimeout) == nil {
		s.mu.Lock()
		delete(s.suspect, pos)
		s.mu.Unlock()
		s.event("suspicion-refuted", "pos", pos)
		return
	}
	if s.MarkDown(pos) == nil {
		s.event("down-confirmed", "pos", pos, "epoch", s.Epoch())
	}
}

// healthView renders the station's current liveness view.
func (s *Station) healthView() HealthReply {
	v := s.view()
	reply := HealthReply{
		Pos: v.pos, N: v.n, Epoch: v.epoch, IsRoot: v.isRoot, Roster: v.roster,
	}
	for pos := range v.down {
		reply.Down = append(reply.Down, pos)
	}
	for pos := range v.suspect {
		reply.Suspect = append(reply.Suspect, pos)
	}
	sort.Ints(reply.Down)
	sort.Ints(reply.Suspect)
	return reply
}

// handleHeartbeat answers a liveness probe, consulting the node's
// installed liveness check.
func (s *Station) handleHeartbeat(decode func(any) error) (any, error) {
	var req struct{}
	if err := decode(&req); err != nil {
		return nil, err
	}
	reply := HeartbeatReply{Pos: s.Pos()}
	if err := s.node.LivenessCheck(); err != nil {
		reply.Err = err.Error()
	}
	return reply, nil
}

// handleHealth reports the station's liveness view.
func (s *Station) handleHealth(decode func(any) error) (any, error) {
	var req struct{}
	if err := decode(&req); err != nil {
		return nil, err
	}
	return s.healthView(), nil
}

// handleEvict force-marks a station dead (root only) and returns the
// resulting health view.
func (s *Station) handleEvict(decode func(any) error) (any, error) {
	var req EvictRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	if err := s.MarkDown(req.Pos); err != nil {
		return nil, err
	}
	return s.healthView(), nil
}

// handleReportDown takes a relay's unreachability observation and
// verifies it before acting (root only).
func (s *Station) handleReportDown(decode func(any) error) (any, error) {
	var req ReportDownRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	if !s.isRoot {
		return nil, fmt.Errorf("%w: report-down", ErrNotRoot)
	}
	s.confirmDown(req.Pos)
	return struct{}{}, nil
}
