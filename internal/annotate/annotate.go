// Package annotate models the instruction annotation daemon of the
// paper: instructors "draw lines, text, and simple graphic objects on
// the top of a Web page", and different instructors keep different
// annotations over the same virtual course. An annotation document is a
// timestamped stream of drawing primitives over one page; documents
// encode to a compact binary format (the "annotation files" stored in
// the Annotation table) and play back in time order for students.
package annotate

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// PrimKind enumerates drawing primitives.
type PrimKind uint8

// Drawing primitive kinds.
const (
	PrimLine PrimKind = iota + 1
	PrimText
	PrimRect
	PrimEllipse
	PrimFreehand
)

// String names the primitive.
func (k PrimKind) String() string {
	switch k {
	case PrimLine:
		return "line"
	case PrimText:
		return "text"
	case PrimRect:
		return "rect"
	case PrimEllipse:
		return "ellipse"
	case PrimFreehand:
		return "freehand"
	default:
		return fmt.Sprintf("PrimKind(%d)", uint8(k))
	}
}

// Point is a page coordinate.
type Point struct {
	X, Y int32
}

// Primitive is one drawing action with its offset from the start of the
// annotation session.
type Primitive struct {
	Kind   PrimKind
	At     time.Duration // offset from session start
	Points []Point       // line: 2, rect/ellipse: 2 (corners), freehand: n
	Text   string        // PrimText only
	Color  uint32        // 0xRRGGBB
	Width  uint8         // stroke width
}

// Document is one instructor's annotation of one page.
type Document struct {
	Author     string
	PageURL    string
	Primitives []Primitive
}

// Encoding errors.
var (
	ErrBadMagic   = errors.New("annotate: not an annotation file")
	ErrBadVersion = errors.New("annotate: unsupported annotation format version")
	ErrCorrupt    = errors.New("annotate: corrupt annotation file")
)

const (
	magic   = "MMUA"
	version = uint16(1)
	// maxReasonable guards length-prefixed reads against corrupt input.
	maxReasonable = 1 << 20
)

// Encode renders the document to the binary annotation-file format.
func (d *Document) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	writeU16(&buf, version)
	writeString(&buf, d.Author)
	writeString(&buf, d.PageURL)
	writeU32(&buf, uint32(len(d.Primitives)))
	for _, p := range d.Primitives {
		buf.WriteByte(byte(p.Kind))
		writeU64(&buf, uint64(p.At))
		writeU32(&buf, p.Color)
		buf.WriteByte(p.Width)
		writeU32(&buf, uint32(len(p.Points)))
		for _, pt := range p.Points {
			writeU32(&buf, uint32(pt.X))
			writeU32(&buf, uint32(pt.Y))
		}
		writeString(&buf, p.Text)
	}
	return buf.Bytes()
}

// Decode parses a binary annotation file.
func Decode(data []byte) (*Document, error) {
	r := bytes.NewReader(data)
	head := make([]byte, 4)
	if _, err := io.ReadFull(r, head); err != nil || string(head) != magic {
		return nil, ErrBadMagic
	}
	v, err := readU16(r)
	if err != nil {
		return nil, ErrCorrupt
	}
	if v != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	var d Document
	if d.Author, err = readString(r); err != nil {
		return nil, ErrCorrupt
	}
	if d.PageURL, err = readString(r); err != nil {
		return nil, ErrCorrupt
	}
	n, err := readU32(r)
	if err != nil || n > maxReasonable {
		return nil, ErrCorrupt
	}
	d.Primitives = make([]Primitive, 0, n)
	for i := uint32(0); i < n; i++ {
		var p Primitive
		kind, err := r.ReadByte()
		if err != nil {
			return nil, ErrCorrupt
		}
		p.Kind = PrimKind(kind)
		at, err := readU64(r)
		if err != nil {
			return nil, ErrCorrupt
		}
		p.At = time.Duration(at)
		if p.Color, err = readU32(r); err != nil {
			return nil, ErrCorrupt
		}
		if p.Width, err = r.ReadByte(); err != nil {
			return nil, ErrCorrupt
		}
		np, err := readU32(r)
		if err != nil || np > maxReasonable {
			return nil, ErrCorrupt
		}
		p.Points = make([]Point, 0, np)
		for j := uint32(0); j < np; j++ {
			x, err := readU32(r)
			if err != nil {
				return nil, ErrCorrupt
			}
			y, err := readU32(r)
			if err != nil {
				return nil, ErrCorrupt
			}
			p.Points = append(p.Points, Point{X: int32(x), Y: int32(y)})
		}
		if p.Text, err = readString(r); err != nil {
			return nil, ErrCorrupt
		}
		d.Primitives = append(d.Primitives, p)
	}
	return &d, nil
}

// Playback returns the primitives with offsets in [from, to), in time
// order, for the annotation playback the student subsystem performs.
func (d *Document) Playback(from, to time.Duration) []Primitive {
	out := make([]Primitive, 0, len(d.Primitives))
	for _, p := range d.Primitives {
		if p.At >= from && p.At < to {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Duration is the offset of the last primitive, i.e. the playback
// length.
func (d *Document) Duration() time.Duration {
	var max time.Duration
	for _, p := range d.Primitives {
		if p.At > max {
			max = p.At
		}
	}
	return max
}

// Merge overlays several instructors' annotations of the same page into
// one time-ordered stream, preserving each primitive's author through
// the returned parallel slice.
func Merge(docs ...*Document) ([]Primitive, []string) {
	type tagged struct {
		p      Primitive
		author string
	}
	var all []tagged
	for _, d := range docs {
		for _, p := range d.Primitives {
			all = append(all, tagged{p: p, author: d.Author})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].p.At < all[j].p.At })
	prims := make([]Primitive, len(all))
	authors := make([]string, len(all))
	for i, t := range all {
		prims[i] = t.p
		authors[i] = t.author
	}
	return prims, authors
}

// BoundingBox returns the smallest rectangle covering every point of
// the document, and false when the document draws nothing.
func (d *Document) BoundingBox() (min, max Point, ok bool) {
	for _, p := range d.Primitives {
		for _, pt := range p.Points {
			if !ok {
				min, max, ok = pt, pt, true
				continue
			}
			if pt.X < min.X {
				min.X = pt.X
			}
			if pt.Y < min.Y {
				min.Y = pt.Y
			}
			if pt.X > max.X {
				max.X = pt.X
			}
			if pt.Y > max.Y {
				max.Y = pt.Y
			}
		}
	}
	return min, max, ok
}

// Validate checks structural invariants: primitives in supported kinds,
// line/rect/ellipse carrying exactly two points, text carrying at least
// one.
func (d *Document) Validate() error {
	for i, p := range d.Primitives {
		switch p.Kind {
		case PrimLine, PrimRect, PrimEllipse:
			if len(p.Points) != 2 {
				return fmt.Errorf("annotate: primitive %d (%s) has %d points, want 2", i, p.Kind, len(p.Points))
			}
		case PrimText:
			if len(p.Points) < 1 {
				return fmt.Errorf("annotate: primitive %d (text) has no anchor point", i)
			}
		case PrimFreehand:
			if len(p.Points) < 2 {
				return fmt.Errorf("annotate: primitive %d (freehand) has %d points, want >= 2", i, len(p.Points))
			}
		default:
			return fmt.Errorf("annotate: primitive %d has unknown kind %d", i, p.Kind)
		}
		if p.At < 0 {
			return fmt.Errorf("annotate: primitive %d has negative offset", i)
		}
	}
	return nil
}

func writeU16(w *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	w.Write(b[:])
}

func writeU32(w *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeU64(w *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func writeString(w *bytes.Buffer, s string) {
	writeU32(w, uint32(len(s)))
	w.WriteString(s)
}

func readU16(r *bytes.Reader) (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b[:]), nil
}

func readU32(r *bytes.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

func readU64(r *bytes.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b[:]), nil
}

func readString(r *bytes.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxReasonable {
		return "", ErrCorrupt
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
