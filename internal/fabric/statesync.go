package fabric

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/docdb"
)

// Checkpoint streaming for rejoin catch-up. The per-entry catch-up
// path costs one Refs RPC plus (for full broadcasts) one parent-route
// resolve per missed document — O(history) round trips for a station
// that was dark through a busy stretch. When the rejoiner is far
// enough behind the broadcast catalog it instead asks the root for a
// state snapshot: one consistent image of every missed document
// (metadata closures, plus media bytes when the watermark policy will
// materialize them anyway), streamed over the transport's chunked
// response path in a single call — O(state), independent of how many
// broadcasts were missed.

// catchUpStreamThreshold is how many missed catalog entries count as
// "too far behind": at or above it, catch-up pulls the root's state
// snapshot in one stream instead of walking entry by entry.
const catchUpStreamThreshold = 3

// StateRequest asks the root for a state snapshot of the given catalog
// URLs. WantMedia requests full bundles for full-broadcast entries
// (the rejoiner sets it when its watermark materializes first
// fetches); otherwise every entry ships as its metadata closure only.
type StateRequest struct {
	URLs      []string
	WantMedia bool
}

// stateDoc is one document inside a streamed state snapshot. The
// stream is a gob sequence of stateDoc values, so neither end ever
// materializes more than one document beyond the transport chunks in
// flight.
type stateDoc struct {
	Entry  CatalogEntry
	Bundle docdb.Bundle
}

// handleState serves a state snapshot from the root's store: the
// authoritative copy of every broadcast document, assembled for the
// requested URLs and streamed back in transport chunks (the returned
// reader is relayed by the server as a chunked response). Documents
// are exported and encoded one at a time into a pipe, so a multi-GB
// catch-up costs the root O(one document) of memory, not O(state).
func (s *Station) handleState(decode func(any) error) (any, error) {
	var req StateRequest
	if err := decode(&req); err != nil {
		return nil, err
	}
	if !s.isRoot {
		return nil, fmt.Errorf("%w: state stream", ErrNotRoot)
	}
	s.mu.Lock()
	byURL := make(map[string]CatalogEntry, len(s.catalog))
	for _, e := range s.catalog {
		byURL[e.URL] = e
	}
	s.mu.Unlock()
	var entries []CatalogEntry
	for _, url := range req.URLs {
		if e, ok := byURL[url]; ok {
			entries = append(entries, e)
		} // an unknown URL was never broadcast; nothing to catch up on
	}
	pr, pw := io.Pipe()
	go func() {
		enc := gob.NewEncoder(pw)
		var err error
		for _, e := range entries {
			var doc *stateDoc
			doc, err = s.exportStateDoc(e, req.WantMedia)
			if err == nil {
				err = enc.Encode(doc)
			}
			if err != nil {
				break
			}
		}
		// A nil error closes the pipe with io.EOF; anything else
		// surfaces to the caller as the stream's error frame.
		pw.CloseWithError(err)
	}()
	return pr, nil
}

// exportStateDoc assembles one document of a state snapshot: the full
// bundle for a full broadcast the rejoiner will materialize, the
// metadata closure otherwise.
func (s *Station) exportStateDoc(e CatalogEntry, wantMedia bool) (*stateDoc, error) {
	if !e.RefOnly && wantMedia {
		full, err := s.store.ExportBundle(e.URL)
		if err != nil {
			return nil, err
		}
		return &stateDoc{Entry: e, Bundle: *full}, nil
	}
	impl, err := s.store.Implementation(e.URL)
	if err != nil {
		return nil, err
	}
	script, err := s.store.Script(impl.ScriptName)
	if err != nil {
		return nil, err
	}
	return &stateDoc{Entry: e, Bundle: docdb.Bundle{Script: script, Impl: impl}}, nil
}

// catchUpStreamed reconciles the missing documents from one streamed
// state snapshot. It lands on exactly the state the per-entry path
// reaches: a reference scaffold for every missed document, full
// instances where the watermark policy materializes a first fetch
// (watermark 0), and one recorded fetch per full broadcast either way
// — so later resolves cross the watermark on the same schedule they
// would have otherwise.
func (s *Station) catchUpStreamed(v view, rootAddr string, missing []CatalogEntry, out *CatchUpResult) error {
	urls := make([]string, len(missing))
	for i, e := range missing {
		urls[i] = e.URL
	}
	wantMedia := v.watermark == 0
	// The transport chunks feed a pipe and documents are decoded and
	// imported one at a time as they arrive, so the rejoiner holds one
	// document — not the whole snapshot — and a slow import
	// back-pressures the stream instead of ballooning a buffer.
	pr, pw := io.Pipe()
	done := make(chan int64, 1)
	go func() {
		n, serr := s.pool(rootAddr).CallStream(methodState, StateRequest{URLs: urls, WantMedia: wantMedia}, pw)
		pw.CloseWithError(serr) // nil -> io.EOF for the decoder
		done <- n
	}()
	// Closing the read end on an early exit unblocks the stream
	// goroutine (its writes fail), so <-done cannot deadlock.
	defer pr.Close()
	dec := gob.NewDecoder(pr)
	out.Streamed = true
	for {
		var doc stateDoc
		if err := dec.Decode(&doc); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("fabric: streaming catch-up state: %w", err)
		}
		e := doc.Entry
		materialize := !e.RefOnly && wantMedia
		var ierr error
		s.importMu.Lock()
		if materialize {
			_, ierr = s.store.ImportBundle(&doc.Bundle, v.pos, false)
		} else {
			_, ierr = s.store.ImportReference(doc.Bundle.Script, doc.Bundle.Impl, v.pos, 1)
		}
		s.importMu.Unlock()
		if ierr != nil {
			return ierr
		}
		out.References++
		if e.RefOnly {
			continue
		}
		s.mu.Lock()
		s.fetches[e.URL]++
		fetches := s.fetches[e.URL]
		s.mu.Unlock()
		out.Resolved = append(out.Resolved, FetchResult{
			URL:        e.URL,
			ServedBy:   1,
			Replicated: materialize,
			Fetches:    fetches,
			Bytes:      doc.Bundle.TotalBytes(),
		})
	}
	out.StreamedBytes = <-done
	return nil
}
